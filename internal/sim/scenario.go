package sim

import (
	"math"

	"billcap/internal/dcmodel"
	"billcap/internal/grid"
	"billcap/internal/pricing"
	"billcap/internal/workload"
)

// PaperScenario assembles the canonical evaluation setup of the paper's
// §VI–§VII: the three paper data centers, the PJM-derived locational
// policies for the chosen variant, a two-month synthetic Wikipedia-like
// trace (first month = budgeting history, second month = evaluated month),
// RECO-like background demand per region, and the 80/20 premium/ordinary
// split. monthlyBudgetUSD of +Inf disables capping.
func PaperScenario(variant pricing.PolicyVariant, monthlyBudgetUSD float64) (Config, error) {
	trace, err := workload.Synthetic(workload.DefaultWikipedia())
	if err != nil {
		return Config{}, err
	}
	half := trace.Len() / 2
	history := trace.Slice(0, half)
	month := trace.Slice(half, trace.Len())

	regions, err := grid.PaperRegions(trace.Len(), 20050601)
	if err != nil {
		return Config{}, err
	}
	demand := make([]grid.Demand, len(regions))
	for i, r := range regions {
		demand[i] = grid.Demand{Region: r.Region, MW: r.MW[half:].Clone()}
	}

	return Config{
		DCs:              dcmodel.PaperSites(),
		Policies:         pricing.PaperPolicies(variant),
		Month:            month,
		History:          history,
		Demand:           demand,
		PremiumFrac:      0.8,
		MonthlyBudgetUSD: monthlyBudgetUSD,
	}, nil
}

// Uncapped is the budget value that disables capping.
func Uncapped() float64 { return math.Inf(1) }

// The paper sweeps monthly budgets of $0.5M–$2.5M against a workload whose
// uncapped monthly bill is ≈$2.0M and whose premium-only floor is ≈70% of
// that. This reproduction's synthetic workload produces an uncapped bill of
// ≈$719K on the same three sites (see EXPERIMENTS.md), so the sweep is
// mapped onto the same *ratios* of the uncapped bill rather than the same
// dollar figures.

// PaperBudgets returns the five monthly budgets of the paper's Fig. 10
// sweep, rescaled: {0.25, 0.5, 0.85, 0.97, 1.08} of the uncapped bill,
// playing the roles of the paper's $0.5M, $1.0M, $1.5M, $2.0M and $2.5M.
// The middle points sit higher relative to the uncapped bill than the
// paper's because this reproduction's cost is closer to linear in load, so
// the premium-only floor (≈73% of the uncapped bill) is higher than the
// paper's effective floor.
func PaperBudgets() []float64 {
	return []float64{180_000, 360_000, 610_000, 700_000, 775_000}
}

// TightBudget plays the paper's insufficient $1.5M budget (Figs. 7–9):
// above the premium-only floor (≈$525K), well below the uncapped bill, so
// premium is always served and ordinary traffic is partially admitted.
func TightBudget() float64 { return 610_000 }

// AbundantBudget plays the paper's sufficient $2.5M budget (Figs. 5–6).
func AbundantBudget() float64 { return 775_000 }

// ShortScenario is PaperScenario truncated to the given number of month
// weeks (history stays at whole weeks too); used by tests and quick demos.
func ShortScenario(variant pricing.PolicyVariant, monthlyBudgetUSD float64, monthWeeks int) (Config, error) {
	cfg, err := PaperScenario(variant, monthlyBudgetUSD)
	if err != nil {
		return Config{}, err
	}
	hours := monthWeeks * workload.HoursPerWeek
	if hours < cfg.Month.Len() {
		cfg.Month = cfg.Month.Slice(0, hours)
	}
	return cfg, nil
}

package dcmodel

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"billcap/internal/fattree"
	"billcap/internal/queueing"
)

func near(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func testSite() *Site {
	net, _ := fattree.New(16) // 1024 hosts
	return &Site{
		Name:         "test",
		MaxServers:   1000,
		IdleW:        50,
		PeakW:        100,
		Queue:        queueing.Model{Mu: 3600 * 100, K: 1}, // 100 req/s
		RespSLAHours: 0.02 / 3600,                          // 20 ms vs 10 ms service time
		Net:          net,
		EdgeW:        84, AggW: 84, CoreW: 240,
		CoolingEff: 2.0,
		PowerCapMW: 1.0,
	}
}

func TestValidate(t *testing.T) {
	if err := testSite().Validate(); err != nil {
		t.Fatalf("valid site rejected: %v", err)
	}
	cases := []struct {
		mutate func(*Site)
		want   string
	}{
		{func(s *Site) { s.MaxServers = 0 }, "MaxServers"},
		{func(s *Site) { s.PeakW = s.IdleW - 1 }, "power law"},
		{func(s *Site) { s.CoolingEff = 0 }, "cooling"},
		{func(s *Site) { s.PowerCapMW = 0 }, "power cap"},
		{func(s *Site) { s.EdgeW = -1 }, "switch power"},
		{func(s *Site) { s.MaxServers = 5000 }, "fat tree"},
		{func(s *Site) { s.Queue.Mu = 0 }, "service rate"},
		{func(s *Site) { s.RespSLAHours = 1e-9 }, "SLA"},
	}
	for _, c := range cases {
		s := testSite()
		c.mutate(s)
		err := s.Validate()
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("mutation %q: err = %v", c.want, err)
		}
	}
}

func TestEvaluateZeroLoadPowersOff(t *testing.T) {
	b, err := testSite().Evaluate(0)
	if err != nil {
		t.Fatal(err)
	}
	if b.TotalW() != 0 || b.Servers != 0 {
		t.Errorf("zero load: %+v, want all zero", b)
	}
}

func TestEvaluateBreakdown(t *testing.T) {
	s := testSite()
	lambda := 100 * s.Queue.Mu // needs ≥ 100 servers
	b, err := s.Evaluate(lambda)
	if err != nil {
		t.Fatal(err)
	}
	if b.Servers < 100 || b.Servers > 110 {
		t.Errorf("servers = %d, want just over 100", b.Servers)
	}
	// Server power: n·50 + 50·(λ/µ) = n·50 + 5000.
	wantServer := float64(b.Servers)*50 + 50*100
	if !near(b.ServerW, wantServer, 1e-6) {
		t.Errorf("server W = %v, want %v", b.ServerW, wantServer)
	}
	// Cooling is exactly half of IT power at coe=2.
	if !near(b.CoolingW, (b.ServerW+b.NetworkW)/2, 1e-9) {
		t.Errorf("cooling W = %v, want half of IT %v", b.CoolingW, b.ServerW+b.NetworkW)
	}
	if b.NetworkW <= 0 {
		t.Errorf("network W = %v, want positive", b.NetworkW)
	}
	if b.Utilization <= 0.9 || b.Utilization > 1 {
		t.Errorf("utilization = %v, want near 1 under minimal provisioning", b.Utilization)
	}
}

func TestEvaluateErrors(t *testing.T) {
	s := testSite()
	if _, err := s.Evaluate(-1); err == nil {
		t.Error("negative load accepted")
	}
	// More than MaxServers can carry.
	if _, err := s.Evaluate(2000 * s.Queue.Mu); err == nil {
		t.Error("overload accepted")
	}
}

func TestAffineTracksDiscrete(t *testing.T) {
	s := testSite()
	m, err := s.Affine(FullPower)
	if err != nil {
		t.Fatal(err)
	}
	maxLam, err := s.MaxLambda()
	if err != nil {
		t.Fatal(err)
	}
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		lambda := 1 + r.Float64()*(maxLam-1)
		d, err := s.TotalPowerMW(lambda)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		a := m.PowerMW(lambda)
		// The discrete model rounds servers and switches up, so it sits at or
		// above the affine model, within one server + one pod + one core
		// switch (cooled).
		slackMW := (s.PeakW + float64(s.Net.K/2)*s.AggW + s.CoreW + s.EdgeW) *
			(1 + 1/s.CoolingEff) / 1e6
		if d < a-1e-9 {
			t.Logf("seed %d: discrete %v below affine %v at λ=%v", seed, d, a, lambda)
			return false
		}
		if d > a+slackMW {
			t.Logf("seed %d: discrete %v exceeds affine %v + slack %v at λ=%v", seed, d, a, slackMW, lambda)
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestServerOnlyScopeIsSmaller(t *testing.T) {
	s := testSite()
	full, err := s.Affine(FullPower)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := s.Affine(ServerOnly)
	if err != nil {
		t.Fatal(err)
	}
	if srv.A >= full.A || srv.B >= full.B {
		t.Errorf("server-only model (%+v) not smaller than full (%+v)", srv, full)
	}
	// With coe=2 and the switch contribution, full is at least 1.5× server-only.
	if full.A < 1.5*srv.A {
		t.Errorf("full A = %v, want ≥ 1.5× server-only %v", full.A, srv.A)
	}
}

func TestMaxLambdaRespectsCapAndServers(t *testing.T) {
	s := testSite()
	lam, err := s.MaxLambda()
	if err != nil {
		t.Fatal(err)
	}
	if lam <= 0 {
		t.Fatalf("MaxLambda = %v", lam)
	}
	p, err := s.TotalPowerMW(lam)
	if err != nil {
		t.Fatalf("MaxLambda %v not servable: %v", lam, err)
	}
	if p > s.PowerCapMW+1e-9 {
		t.Errorf("power at MaxLambda = %v MW exceeds cap %v", p, s.PowerCapMW)
	}
	// A tiny power cap must bind before the server count does.
	s2 := testSite()
	s2.PowerCapMW = 0.01
	lam2, err := s2.MaxLambda()
	if err != nil {
		t.Fatal(err)
	}
	if lam2 >= lam {
		t.Errorf("tight cap did not reduce MaxLambda: %v >= %v", lam2, lam)
	}
}

func TestPaperSites(t *testing.T) {
	sites := PaperSites()
	if len(sites) != 3 {
		t.Fatalf("len = %d, want 3", len(sites))
	}
	wantNames := []string{"DC1-B", "DC2-C", "DC3-D"}
	for i, s := range sites {
		if s.Name != wantNames[i] {
			t.Errorf("site %d name = %q, want %q", i, s.Name, wantNames[i])
		}
		if err := s.Validate(); err != nil {
			t.Errorf("site %s invalid: %v", s.Name, err)
		}
		// The per-server law reproduces the paper's wattage at 80% util.
		want := []float64{88.88, 34.10, 49.90}[i]
		got := s.IdleW + (s.PeakW-s.IdleW)*0.8
		if !near(got, want, 1e-9) {
			t.Errorf("site %s sp(0.8) = %v, want %v", s.Name, got, want)
		}
		lam, err := s.MaxLambda()
		if err != nil || lam <= 0 {
			t.Errorf("site %s MaxLambda = %v, %v", s.Name, lam, err)
		}
	}
	// Fleet power at maximum load must land in the 100–300 MW band that the
	// paper's dollar figures imply (price-maker scale).
	total := 0.0
	for _, s := range sites {
		lam, _ := s.MaxLambda()
		p, err := s.TotalPowerMW(lam)
		if err != nil {
			t.Fatalf("site %s: %v", s.Name, err)
		}
		total += p
	}
	if total < 100 || total > 300 {
		t.Errorf("fleet max power = %v MW, want within [100, 300]", total)
	}
}

func TestSyntheticSites(t *testing.T) {
	sites := SyntheticSites(13)
	if len(sites) != 13 {
		t.Fatalf("len = %d, want 13", len(sites))
	}
	names := map[string]bool{}
	for _, s := range sites {
		if err := s.Validate(); err != nil {
			t.Errorf("site %s invalid: %v", s.Name, err)
		}
		if names[s.Name] {
			t.Errorf("duplicate site name %s", s.Name)
		}
		names[s.Name] = true
	}
	// Perturbation must make cycle-1 sites differ from cycle-0.
	if sites[0].PeakW == sites[3].PeakW {
		t.Errorf("sites 0 and 3 identical peak power")
	}
}

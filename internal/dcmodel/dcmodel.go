// Package dcmodel models a single data center site: its server fleet,
// network fabric and cooling plant, and the local optimizer that keeps the
// minimum number of servers active for the response-time set point
// (paper §IV-B).
//
// Two views of the same physics are provided:
//
//   - the discrete view (Evaluate) with integer server and switch counts —
//     what the simulator bills against the real price policy, and
//   - the affine view (Affine) p(λ) = A·λ + B in MW — what enters the MILP,
//     exact up to the integrality of servers and switches.
//
// The affine server term is exact in expectation: total server power is
// n·Idle + (Peak−Idle)·λ/µ because the busy fractions of all active servers
// sum to λ/µ regardless of how load is spread.
package dcmodel

import (
	"fmt"
	"math"

	"billcap/internal/fattree"
	"billcap/internal/queueing"
)

// Site describes one data center and its regional power-market parameters.
type Site struct {
	// Name identifies the site in reports, e.g. "DC1-B".
	Name string
	// MaxServers is the installed (homogeneous) server count.
	MaxServers int
	// IdleW and PeakW are per-server power at 0% and 100% utilization:
	// sp(u) = IdleW + (PeakW−IdleW)·u (paper §IV-B: sp = I + D·u).
	IdleW, PeakW float64
	// Queue carries the per-server service rate (req/h) and workload
	// variability of the G/G/m model.
	Queue queueing.Model
	// RespSLAHours is the response-time set point Rs in hours.
	RespSLAHours float64
	// Net is the k-ary fat-tree fabric; EdgeW/AggW/CoreW are per-switch
	// powers in watts (switches are not energy proportional).
	Net                fattree.Topology
	EdgeW, AggW, CoreW float64
	// CoolingEff is the cooling efficiency coe: heat removed per watt spent
	// on cooling, so cooling power = IT power / coe.
	CoolingEff float64
	// PowerCapMW is the supplier-imposed cap Ps on the site's draw.
	PowerCapMW float64
}

// Validate reports the first configuration error, if any.
func (s *Site) Validate() error {
	switch {
	case s.MaxServers <= 0:
		return fmt.Errorf("dcmodel %s: MaxServers %d", s.Name, s.MaxServers)
	case s.IdleW < 0 || s.PeakW < s.IdleW:
		return fmt.Errorf("dcmodel %s: server power law idle=%v peak=%v", s.Name, s.IdleW, s.PeakW)
	case s.CoolingEff <= 0:
		return fmt.Errorf("dcmodel %s: cooling efficiency %v", s.Name, s.CoolingEff)
	case s.PowerCapMW <= 0:
		return fmt.Errorf("dcmodel %s: power cap %v MW", s.Name, s.PowerCapMW)
	case s.EdgeW < 0 || s.AggW < 0 || s.CoreW < 0:
		return fmt.Errorf("dcmodel %s: negative switch power", s.Name)
	case s.Net.Capacity() < s.MaxServers:
		return fmt.Errorf("dcmodel %s: fat tree k=%d holds %d hosts < %d servers",
			s.Name, s.Net.K, s.Net.Capacity(), s.MaxServers)
	}
	if err := s.Queue.Validate(); err != nil {
		return fmt.Errorf("dcmodel %s: %w", s.Name, err)
	}
	if s.RespSLAHours <= 1/s.Queue.Mu {
		return fmt.Errorf("dcmodel %s: SLA %v h not above service time %v h",
			s.Name, s.RespSLAHours, 1/s.Queue.Mu)
	}
	return nil
}

// PowerBreakdown is the discrete evaluation of a site at one arrival rate.
type PowerBreakdown struct {
	Servers     int
	Switches    fattree.ActiveSwitches
	Utilization float64
	ServerW     float64
	NetworkW    float64
	CoolingW    float64
}

// TotalW returns server + network + cooling power in watts.
func (b PowerBreakdown) TotalW() float64 { return b.ServerW + b.NetworkW + b.CoolingW }

// TotalMW returns the total in megawatts.
func (b PowerBreakdown) TotalMW() float64 { return b.TotalW() / 1e6 }

// Evaluate runs the local optimizer for arrival rate lambda (req/h) and
// returns the realized discrete power breakdown. lambda == 0 powers the site
// off entirely. An error is returned when the load exceeds what MaxServers
// can carry within the SLA.
func (s *Site) Evaluate(lambda float64) (PowerBreakdown, error) {
	if lambda < 0 {
		return PowerBreakdown{}, fmt.Errorf("dcmodel %s: negative load %v", s.Name, lambda)
	}
	if lambda == 0 {
		return PowerBreakdown{}, nil
	}
	n, err := s.Queue.MinServers(lambda, s.RespSLAHours)
	if err != nil {
		return PowerBreakdown{}, fmt.Errorf("dcmodel %s: %w", s.Name, err)
	}
	if n > s.MaxServers {
		return PowerBreakdown{}, fmt.Errorf("dcmodel %s: load %v needs %d servers > %d installed",
			s.Name, lambda, n, s.MaxServers)
	}
	u := s.Queue.Utilization(lambda, n)
	// Busy fractions across the fleet sum to λ/µ exactly.
	serverW := float64(n)*s.IdleW + (s.PeakW-s.IdleW)*lambda/s.Queue.Mu
	sw := s.Net.Active(n)
	netW := float64(sw.Edge)*s.EdgeW + float64(sw.Agg)*s.AggW + float64(sw.Core)*s.CoreW
	coolW := (serverW + netW) / s.CoolingEff
	return PowerBreakdown{
		Servers:     n,
		Switches:    sw,
		Utilization: u,
		ServerW:     serverW,
		NetworkW:    netW,
		CoolingW:    coolW,
	}, nil
}

// TotalPowerMW is Evaluate reduced to the total draw in MW.
func (s *Site) TotalPowerMW(lambda float64) (float64, error) {
	b, err := s.Evaluate(lambda)
	if err != nil {
		return 0, err
	}
	return b.TotalMW(), nil
}

// ModelScope selects which power components an optimizer's site model
// includes. The paper's contribution models everything; the Min-Only
// baseline and the A1 ablation model servers only.
type ModelScope int

// Model scopes.
const (
	// FullPower includes servers, network and cooling.
	FullPower ModelScope = iota
	// ServerOnly ignores network and cooling (Min-Only baseline view).
	ServerOnly
)

// AffineModel is the optimizer's linear view of site power:
// p(λ) = A·λ + B megawatts for λ > 0 (and exactly 0 at λ = 0 when off).
type AffineModel struct {
	A float64 // MW per (req/h)
	B float64 // MW fixed cost while the site is on
}

// PowerMW evaluates the affine model.
func (m AffineModel) PowerMW(lambda float64) float64 { return m.A*lambda + m.B }

// Affine derives the optimizer's affine power model from the site physics.
func (s *Site) Affine(scope ModelScope) (AffineModel, error) {
	if err := s.Validate(); err != nil {
		return AffineModel{}, err
	}
	alpha, beta, err := s.Queue.ServerCoefficients(s.RespSLAHours)
	if err != nil {
		return AffineModel{}, err
	}
	// Server fleet: n(λ) = αλ + β active servers, busy work λ/µ.
	aW := s.PeakW * alpha // = Idle·α + (Peak−Idle)/µ since α = 1/µ
	bW := s.IdleW * beta
	if scope == FullPower {
		eRate, aRate, cRate := s.Net.Rates()
		unitNet := eRate*s.EdgeW + aRate*s.AggW + cRate*s.CoreW // W per server
		aW += unitNet * alpha
		bW += unitNet * beta
		overhead := 1 + 1/s.CoolingEff
		aW *= overhead
		bW *= overhead
	}
	return AffineModel{A: aW / 1e6, B: bW / 1e6}, nil
}

// RoundingSlackMW bounds how far the discrete realization can sit above the
// affine model: one extra server, one pod of aggregation switches, one core
// and one edge switch — all cooled. Optimizers must leave this headroom
// below power caps and price-step boundaries.
func (s *Site) RoundingSlackMW() float64 {
	return (s.PeakW + float64(s.Net.K/2)*s.AggW + s.CoreW + s.EdgeW) *
		(1 + 1/s.CoolingEff) / 1e6
}

// MaxLambda returns the largest arrival rate the site can accept, limited by
// both the installed servers (SLA feasibility) and the power cap under the
// full affine model, with a small safety margin to absorb the integer
// rounding the simulator applies.
func (s *Site) MaxLambda() (float64, error) {
	if err := s.Validate(); err != nil {
		return 0, err
	}
	byServers, err := s.Queue.MaxThroughput(s.MaxServers, s.RespSLAHours)
	if err != nil {
		return 0, err
	}
	m, err := s.Affine(FullPower)
	if err != nil {
		return 0, err
	}
	slackMW := s.RoundingSlackMW()
	byPower := math.Inf(1)
	if m.A > 0 {
		byPower = (s.PowerCapMW - slackMW - m.B) / m.A
	}
	lam := math.Min(byServers, byPower)
	if lam < 0 {
		lam = 0
	}
	return lam, nil
}

package dcmodel

import (
	"fmt"

	"billcap/internal/fattree"
	"billcap/internal/queueing"
)

// Paper site constants (paper §VI-A), with two documented deviations:
//
//   - MaxServers is 700 000 rather than the paper's "up to 300 000": with the
//     paper's own per-server watts, 300 000 servers draw < 45 MW per site,
//     which cannot produce the multi-million-dollar monthly bills of the
//     paper's budget experiments. 700 000 servers per site put fleet power in
//     the 100–230 MW band the paper's dollar figures imply. See DESIGN.md.
//   - The per-server wattage the paper states (88.88 / 34.10 / 49.90 W) is
//     interpreted as the draw at 80% utilization of the linear law
//     sp(u) = I + D·u, with I = 0.5·sp80 and peak 1.125·sp80.
const (
	paperMaxServers = 700_000
	// paperSLAHours is the response-time set point Rs: 5 ms, comfortably
	// above the slowest site's 3.33 ms service time.
	paperSLAHours = 0.005 / 3600
	// paperK is the workload variability (C_A²+C_B²)/2 observed by the bill
	// capper.
	paperK = 1.0
)

// paperSpec is the transcription of Table-like data in paper §VI-A.
type paperSpec struct {
	name               string
	sp80W              float64 // per-server watts at 80% utilization
	muPerSec           float64 // per-server capacity, requests/second
	edgeW, aggW, coreW float64
	coe                float64
	capMW              float64
}

func paperSpecs() []paperSpec {
	return []paperSpec{
		// DC1: 2.0 GHz AMD Athlon, location B.
		{name: "DC1-B", sp80W: 88.88, muPerSec: 500, edgeW: 84, aggW: 84, coreW: 240, coe: 1.94, capMW: 105},
		// DC2: 1.2 GHz Intel Pentium 4630, location C.
		{name: "DC2-C", sp80W: 34.10, muPerSec: 300, edgeW: 70, aggW: 70, coreW: 260, coe: 1.39, capMW: 48},
		// DC3: 2.9 GHz Intel Pentium D950, location D.
		{name: "DC3-D", sp80W: 49.90, muPerSec: 725, edgeW: 75, aggW: 75, coreW: 240, coe: 1.74, capMW: 63},
	}
}

func siteFromSpec(sp paperSpec, maxServers int) *Site {
	net, err := fattree.ForHosts(maxServers)
	if err != nil {
		panic(fmt.Sprintf("dcmodel: %v", err))
	}
	return &Site{
		Name:         sp.name,
		MaxServers:   maxServers,
		IdleW:        0.5 * sp.sp80W,
		PeakW:        1.125 * sp.sp80W,
		Queue:        queueing.Model{Mu: sp.muPerSec * 3600, K: paperK},
		RespSLAHours: paperSLAHours,
		Net:          net,
		EdgeW:        sp.edgeW,
		AggW:         sp.aggW,
		CoreW:        sp.coreW,
		CoolingEff:   sp.coe,
		PowerCapMW:   sp.capMW,
	}
}

// PaperSites returns the three data centers of the paper's evaluation.
func PaperSites() []*Site {
	specs := paperSpecs()
	out := make([]*Site, len(specs))
	for i, sp := range specs {
		out[i] = siteFromSpec(sp, paperMaxServers)
	}
	return out
}

// SyntheticSites returns n sites for scalability experiments (the paper's
// solver-latency claim uses 13 data centers). Sites cycle through the three
// paper configurations with mild per-cycle perturbations so no two sites are
// exactly interchangeable.
func SyntheticSites(n int) []*Site {
	specs := paperSpecs()
	out := make([]*Site, n)
	for i := 0; i < n; i++ {
		sp := specs[i%len(specs)]
		cycle := float64(i / len(specs))
		sp.name = fmt.Sprintf("%s#%d", sp.name, i)
		sp.sp80W *= 1 + 0.03*cycle
		sp.muPerSec *= 1 + 0.02*cycle
		sp.capMW *= 1 + 0.01*cycle
		out[i] = siteFromSpec(sp, paperMaxServers)
	}
	return out
}

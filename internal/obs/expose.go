package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus writes every metric in the Prometheus text exposition
// format (version 0.0.4), families sorted by name and children by label
// block, so output is deterministic and diffable.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.RLock()
	fams := make([]*family, 0, len(r.fams))
	for _, f := range r.fams {
		fams = append(fams, f)
	}
	r.mu.RUnlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	bw := bufio.NewWriter(w)
	for _, f := range fams {
		if err := f.write(bw); err != nil {
			return err
		}
	}
	return bw.Flush()
}

func (f *family) write(w *bufio.Writer) error {
	f.mu.RLock()
	children := make([]*child, 0, len(f.children))
	for _, c := range f.children {
		children = append(children, c)
	}
	f.mu.RUnlock()
	if len(children) == 0 {
		return nil
	}
	sort.Slice(children, func(i, j int) bool { return children[i].labels < children[j].labels })

	if f.help != "" {
		fmt.Fprintf(w, "# HELP %s %s\n", f.name, escapeHelp(f.help))
	}
	fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.k)
	for _, c := range children {
		switch m := c.metric.(type) {
		case *Counter:
			fmt.Fprintf(w, "%s%s %s\n", f.name, c.labels, formatFloat(m.Value()))
		case *Gauge:
			fmt.Fprintf(w, "%s%s %s\n", f.name, c.labels, formatFloat(m.Value()))
		case *Histogram:
			cum := uint64(0)
			for i, upper := range m.uppers {
				cum += m.counts[i].Load()
				fmt.Fprintf(w, "%s_bucket%s %d\n", f.name,
					mergeLabel(c.labels, "le", formatFloat(upper)), cum)
			}
			// The +Inf bucket reports the Count gauge, not cum+overflow:
			// a concurrent Observe may have bumped a bucket we already
			// passed, and Prometheus requires bucket ≤ count monotonicity.
			total := m.Count()
			if cum > total {
				total = cum
			}
			fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, mergeLabel(c.labels, "le", "+Inf"), total)
			fmt.Fprintf(w, "%s_sum%s %s\n", f.name, c.labels, formatFloat(m.Sum()))
			fmt.Fprintf(w, "%s_count%s %d\n", f.name, c.labels, total)
		}
	}
	return nil
}

// Handler serves the registry at GET /metrics.
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet && req.Method != http.MethodHead {
			http.Error(w, "GET only", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}

// renderLabels builds the canonical `{k="v",…}` block ("" when unlabeled).
func renderLabels(names, values []string) string {
	if len(names) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// mergeLabel inserts one more label pair into an already-rendered block
// (used for the histogram `le` label).
func mergeLabel(block, name, value string) string {
	pair := name + `="` + escapeLabel(value) + `"`
	if block == "" {
		return "{" + pair + "}"
	}
	return block[:len(block)-1] + "," + pair + "}"
}

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return strings.ReplaceAll(s, `"`, `\"`)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

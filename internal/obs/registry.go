// Package obs is the repository's zero-dependency observability substrate:
// a concurrency-safe metrics registry (counters, gauges, fixed-bucket
// histograms, optionally labeled) with Prometheus text-format exposition,
// and a structured per-decision trace emitted as JSON lines.
//
// It exists so the controller stops being a black box: the MILP
// branch-and-bound, the two-step capping decision (paper §IV–§V) and the
// budgeter's carry-forward ledger (§III) all report through this package,
// and capperd serves the result on GET /metrics. Everything is standard
// library only.
package obs

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing value. All methods are safe for
// concurrent use.
type Counter struct {
	bits atomic.Uint64 // float64 bits
}

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Add increases the counter. Negative deltas are a programming error and
// panic: a counter that can go down is a gauge.
func (c *Counter) Add(v float64) {
	if v < 0 || math.IsNaN(v) {
		panic(fmt.Sprintf("obs: counter add %v", v))
	}
	addFloat(&c.bits, v)
}

// Value returns the current count.
func (c *Counter) Value() float64 { return math.Float64frombits(c.bits.Load()) }

// Gauge is an instantaneous value that can go up and down. All methods are
// safe for concurrent use.
type Gauge struct {
	bits atomic.Uint64 // float64 bits
}

// Set overwrites the value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add shifts the value by v (negative allowed).
func (g *Gauge) Add(v float64) { addFloat(&g.bits, v) }

// Inc adds 1.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts 1.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// addFloat is a lock-free float64 accumulator over atomic bits.
func addFloat(bits *atomic.Uint64, v float64) {
	for {
		old := bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Histogram counts observations into fixed buckets (cumulative at
// exposition time, like Prometheus). All methods are safe for concurrent
// use.
type Histogram struct {
	uppers []float64       // strictly increasing upper bounds; +Inf implicit
	counts []atomic.Uint64 // len(uppers)+1, last = overflow
	sum    atomic.Uint64   // float64 bits
	count  atomic.Uint64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.uppers, v) // first bucket with upper ≥ v
	h.counts[i].Add(1)
	h.count.Add(1)
	addFloat(&h.sum, v)
}

// Sum returns the running total of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// DefBuckets are latency-shaped default buckets in seconds (5 ms – 10 s),
// matching the Prometheus client default.
var DefBuckets = []float64{.005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10}

// ExpBuckets returns n strictly increasing buckets starting at start and
// growing by factor: {start, start·f, …, start·fⁿ⁻¹}.
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic(fmt.Sprintf("obs: exp buckets (%v, %v, %d)", start, factor, n))
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = start
		start *= factor
	}
	return out
}

// kind discriminates metric families.
type kind int

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
)

func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// child is one labeled instance of a family. labels is the pre-rendered
// `{k="v",…}` block ("" for the unlabeled singleton) and doubles as the
// family-map key, so equal label values always resolve to the same metric.
type child struct {
	labels string
	metric any // *Counter, *Gauge or *Histogram
}

// family is all children sharing one metric name.
type family struct {
	name    string
	help    string
	k       kind
	labels  []string  // declared label names (nil for unlabeled)
	buckets []float64 // histograms only

	mu       sync.RWMutex
	children map[string]*child
}

// get returns the child for the given label values, creating it on first
// use.
func (f *family) get(values []string) any {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("obs: %s wants %d label values, got %d", f.name, len(f.labels), len(values)))
	}
	key := renderLabels(f.labels, values)
	f.mu.RLock()
	c := f.children[key]
	f.mu.RUnlock()
	if c != nil {
		return c.metric
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if c := f.children[key]; c != nil { // lost the creation race
		return c.metric
	}
	c = &child{labels: key}
	switch f.k {
	case kindCounter:
		c.metric = &Counter{}
	case kindGauge:
		c.metric = &Gauge{}
	case kindHistogram:
		c.metric = &Histogram{
			uppers: f.buckets,
			counts: make([]atomic.Uint64, len(f.buckets)+1),
		}
	}
	f.children[key] = c
	return c.metric
}

// Registry is a set of named metric families. The zero value is not usable;
// call NewRegistry. All methods are safe for concurrent use, and the
// constructors are get-or-create: asking twice for the same name returns
// the same metric.
type Registry struct {
	mu   sync.RWMutex
	fams map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: map[string]*family{}}
}

// family returns the named family, creating it with the given shape on
// first use. Re-registering a name with a different type, label set or
// bucket layout is a programming error and panics.
func (r *Registry) family(name, help string, k kind, labels []string, buckets []float64) *family {
	if name == "" {
		panic("obs: empty metric name")
	}
	r.mu.RLock()
	f := r.fams[name]
	r.mu.RUnlock()
	if f == nil {
		r.mu.Lock()
		if f = r.fams[name]; f == nil {
			if k == kindHistogram {
				if len(buckets) == 0 {
					panic(fmt.Sprintf("obs: histogram %s with no buckets", name))
				}
				if !sort.Float64sAreSorted(buckets) {
					panic(fmt.Sprintf("obs: histogram %s buckets not sorted", name))
				}
			}
			f = &family{
				name: name, help: help, k: k,
				labels:   append([]string(nil), labels...),
				buckets:  append([]float64(nil), buckets...),
				children: map[string]*child{},
			}
			r.fams[name] = f
		}
		r.mu.Unlock()
	}
	if f.k != k || len(f.labels) != len(labels) {
		panic(fmt.Sprintf("obs: %s re-registered as %v with %d labels (was %v with %d)",
			name, k, len(labels), f.k, len(f.labels)))
	}
	for i := range labels {
		if f.labels[i] != labels[i] {
			panic(fmt.Sprintf("obs: %s re-registered with label %q (was %q)", name, labels[i], f.labels[i]))
		}
	}
	return f
}

// Counter returns the unlabeled counter of the given name.
func (r *Registry) Counter(name, help string) *Counter {
	return r.family(name, help, kindCounter, nil, nil).get(nil).(*Counter)
}

// Gauge returns the unlabeled gauge of the given name.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.family(name, help, kindGauge, nil, nil).get(nil).(*Gauge)
}

// Histogram returns the unlabeled histogram of the given name.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	return r.family(name, help, kindHistogram, nil, buckets).get(nil).(*Histogram)
}

// CounterVec is a counter family keyed by label values.
type CounterVec struct{ f *family }

// CounterVec returns the labeled counter family of the given name.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{r.family(name, help, kindCounter, labels, nil)}
}

// With returns the counter for the given label values (created on first
// use).
func (v *CounterVec) With(values ...string) *Counter { return v.f.get(values).(*Counter) }

// GaugeVec is a gauge family keyed by label values.
type GaugeVec struct{ f *family }

// GaugeVec returns the labeled gauge family of the given name.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{r.family(name, help, kindGauge, labels, nil)}
}

// With returns the gauge for the given label values.
func (v *GaugeVec) With(values ...string) *Gauge { return v.f.get(values).(*Gauge) }

// HistogramVec is a histogram family keyed by label values.
type HistogramVec struct{ f *family }

// HistogramVec returns the labeled histogram family of the given name. All
// children share the bucket layout.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	return &HistogramVec{r.family(name, help, kindHistogram, labels, buckets)}
}

// With returns the histogram for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram { return v.f.get(values).(*Histogram) }

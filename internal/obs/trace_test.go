package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestJSONSinkLines(t *testing.T) {
	var buf bytes.Buffer
	s := NewJSONSink(&buf)
	b := 500.0
	for h := 0; h < 3; h++ {
		err := s.Emit(DecisionTrace{
			Hour: h, Step: "cost-min",
			ArrivedLambda: 1e12, Served: 1e12,
			BudgetUSD: &b,
			Sites:     []SiteTrace{{Site: "DC1", Lambda: 1e12, On: true}},
			Solver:    SolverTrace{Solves: 1, Nodes: 5, Pivots: 40, Incumbents: 1, WallMS: 1.5},
			Budget:    &BudgetTrace{ShareUSD: 450, PoolUSD: -50},
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("%d lines, want 3", len(lines))
	}
	for i, ln := range lines {
		var tr DecisionTrace
		if err := json.Unmarshal([]byte(ln), &tr); err != nil {
			t.Fatalf("line %d not JSON: %v", i, err)
		}
		if tr.Hour != i || tr.Step != "cost-min" || tr.Solver.Nodes != 5 {
			t.Errorf("line %d round-tripped to %+v", i, tr)
		}
		if tr.Budget == nil || tr.Budget.ShareUSD != 450 {
			t.Errorf("line %d budget = %+v", i, tr.Budget)
		}
	}
}

func TestJSONSinkOmitsUncapped(t *testing.T) {
	var buf bytes.Buffer
	if err := NewJSONSink(&buf).Emit(DecisionTrace{Hour: 1, Step: "cost-min"}); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "budget") {
		t.Errorf("uncapped trace still mentions budget: %s", buf.String())
	}
}

// TestJSONSinkConcurrent proves line integrity under concurrent emitters
// (the simulator's RunAll runs strategies in parallel against one sink).
func TestJSONSinkConcurrent(t *testing.T) {
	var buf bytes.Buffer
	s := NewJSONSink(&buf)
	var wg sync.WaitGroup
	const n, per = 8, 50
	for w := 0; w < n; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if err := s.Emit(DecisionTrace{Hour: w*per + i, Step: "x"}); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	sc := bufio.NewScanner(bytes.NewReader(buf.Bytes()))
	count := 0
	for sc.Scan() {
		var tr DecisionTrace
		if err := json.Unmarshal(sc.Bytes(), &tr); err != nil {
			t.Fatalf("interleaved line: %v", err)
		}
		count++
	}
	if count != n*per {
		t.Fatalf("%d lines, want %d", count, n*per)
	}
}

package obs

import (
	"encoding/json"
	"io"
	"sync"
)

// DecisionTrace is one invocation hour's structured record: which branch of
// the two-step algorithm ran, where the load went, what the MILP search
// cost, and where the budget ledger stands. Sinks receive one per decided
// hour; the JSON encoding is a single line, so a month of traces is a
// greppable 720-line file.
type DecisionTrace struct {
	Hour int    `json:"hour"`
	Step string `json:"step"`
	// Degraded names the degradation-ladder rung that produced the decision
	// ("time-limit", "fallback", "stale", "shed"); empty for a clean optimal
	// solve.
	Degraded string `json:"degraded,omitempty"`

	ArrivedLambda  float64 `json:"arrivedLambda"`
	PremiumLambda  float64 `json:"premiumLambda"`
	Served         float64 `json:"served"`
	ServedPremium  float64 `json:"servedPremium"`
	ServedOrdinary float64 `json:"servedOrdinary"`
	DroppedLambda  float64 `json:"droppedLambda,omitempty"`

	// BudgetUSD is the hour's available budget at decision time; nil when
	// capping is disabled (JSON cannot carry +Inf).
	BudgetUSD        *float64 `json:"budgetUSD,omitempty"`
	PredictedCostUSD float64  `json:"predictedCostUSD"`
	RealizedCostUSD  float64  `json:"realizedCostUSD"`
	PenaltyUSD       float64  `json:"penaltyUSD,omitempty"`
	CapViolations    int      `json:"capViolations,omitempty"`

	// EnergyUSD / DemandUSD / SettlementUSD decompose RealizedCostUSD when a
	// tariff beyond plain energy charges is active; all zero otherwise.
	EnergyUSD     float64 `json:"energyUSD,omitempty"`
	DemandUSD     float64 `json:"demandUSD,omitempty"`
	SettlementUSD float64 `json:"settlementUSD,omitempty"`

	Sites  []SiteTrace  `json:"sites"`
	Solver SolverTrace  `json:"solver"`
	Budget *BudgetTrace `json:"budget,omitempty"`
}

// SiteTrace is one site's realized share of the hour.
type SiteTrace struct {
	Site           string  `json:"site"`
	Lambda         float64 `json:"lambda"`
	PowerMW        float64 `json:"powerMW"`
	PriceUSDPerMWh float64 `json:"priceUSDPerMWh"`
	CostUSD        float64 `json:"costUSD"`
	On             bool    `json:"on"`
	// GridMW is the metered supplier draw (differs from PowerMW only when a
	// co-located battery charged or discharged); SoCMWh is the battery state
	// of charge after the hour. Both omitted outside tariff runs.
	GridMW float64 `json:"gridMW,omitempty"`
	SoCMWh float64 `json:"socMWh,omitempty"`
}

// SolverTrace is the MILP effort behind the hour's decision.
type SolverTrace struct {
	Solves     int     `json:"solves"`
	Nodes      int     `json:"nodes"`
	Pivots     int     `json:"pivots"`
	Incumbents int     `json:"incumbents"`
	Timeouts   int     `json:"timeouts,omitempty"`
	Workers    int     `json:"workers,omitempty"`
	WallMS     float64 `json:"wallMS"`
	// PresolveFixed counts integer variables fixed before branch-and-bound;
	// WarmStarted counts solves seeded with the previous hour's optimum.
	// Both stay 0 unless the solve cache is enabled.
	PresolveFixed int `json:"presolveFixed,omitempty"`
	WarmStarted   int `json:"warmStarted,omitempty"`
	// LPRefactorizations / LPBasisUpdates are the sparse LP core's basis
	// work (LU rebuilds, eta-file updates); 0 on the dense oracle.
	LPRefactorizations int `json:"lpRefactorizations,omitempty"`
	LPBasisUpdates     int `json:"lpBasisUpdates,omitempty"`
	// DecompIterations / DecompGap / DecompDualBound describe the Lagrangian
	// dual-decomposition effort when the fleet-scale path served the hour:
	// subgradient iterations across the hour's step solves, the worst proven
	// relative primal–dual gap, and the last dual bound. All zero on the
	// exact-MILP path.
	DecompIterations int     `json:"decompIterations,omitempty"`
	DecompGap        float64 `json:"decompGap,omitempty"`
	DecompDualBound  float64 `json:"decompDualBound,omitempty"`
}

// BudgetTrace is the carry-forward ledger state after the hour was
// recorded (paper §III).
type BudgetTrace struct {
	ShareUSD     float64 `json:"shareUSD"`     // the hour's base allocation
	PoolUSD      float64 `json:"poolUSD"`      // within-week carryover after recording
	SpentUSD     float64 `json:"spentUSD"`     // cumulative realized spend
	RemainingUSD float64 `json:"remainingUSD"` // monthly budget minus spend
	Violations   int     `json:"violations"`   // hours that overran their budget so far
}

// Sink receives decision traces. Implementations must be safe for
// concurrent use; Run loops abort on the first emission error.
type Sink interface {
	Emit(t DecisionTrace) error
}

// JSONSink writes each trace as one compact JSON line.
type JSONSink struct {
	mu  sync.Mutex
	enc *json.Encoder
}

// NewJSONSink wraps a writer (file, buffer, pipe) as a line-oriented sink.
func NewJSONSink(w io.Writer) *JSONSink {
	return &JSONSink{enc: json.NewEncoder(w)}
}

// Emit writes one line.
func (s *JSONSink) Emit(t DecisionTrace) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.enc.Encode(t)
}

// SinkFunc adapts a function to the Sink interface (tests, in-memory
// collectors).
type SinkFunc func(t DecisionTrace) error

// Emit calls the function.
func (f SinkFunc) Emit(t DecisionTrace) error { return f(t) }

package obs

import (
	"fmt"
	"io"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounter(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("reqs_total", "Requests.")
	c.Inc()
	c.Add(2.5)
	if got := c.Value(); got != 3.5 {
		t.Fatalf("counter = %v, want 3.5", got)
	}
	if r.Counter("reqs_total", "Requests.") != c {
		t.Fatal("get-or-create returned a different counter")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("negative Add did not panic")
		}
	}()
	c.Add(-1)
}

func TestGauge(t *testing.T) {
	g := NewRegistry().Gauge("depth", "")
	g.Set(10)
	g.Add(-2.5)
	g.Inc()
	g.Dec()
	if got := g.Value(); got != 7.5 {
		t.Fatalf("gauge = %v, want 7.5", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewRegistry().Histogram("lat", "", []float64{1, 5, 10})
	for _, v := range []float64{0.5, 1, 1.5, 7, 100} {
		h.Observe(v)
	}
	if h.Count() != 5 || h.Sum() != 110 {
		t.Fatalf("count=%d sum=%v", h.Count(), h.Sum())
	}
	// le semantics: 1 falls in the le="1" bucket.
	want := []uint64{2, 1, 1, 1} // (..1], (1..5], (5..10], (10..)
	for i, w := range want {
		if got := h.counts[i].Load(); got != w {
			t.Errorf("bucket %d = %d, want %d", i, got, w)
		}
	}
}

func TestVecChildren(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("steps_total", "", "step")
	v.With("cost-min").Add(3)
	v.With("premium-only").Inc()
	if v.With("cost-min").Value() != 3 {
		t.Fatal("label child not stable")
	}
	hv := r.HistogramVec("lat", "", []float64{1}, "path")
	hv.With("/a").Observe(0.5)
	if hv.With("/a").Count() != 1 {
		t.Fatal("histogram child not stable")
	}
}

func TestMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", "")
	for name, f := range map[string]func(){
		"kind":   func() { r.Gauge("m", "") },
		"labels": func() { r.CounterVec("m", "", "x") },
		"arity":  func() { r.CounterVec("v", "", "a").With("1", "2") },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s mismatch did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestExpositionGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("billcap_decide_total", "Decisions taken.").Add(42)
	v := r.CounterVec("billcap_decide_step_total", "Decisions by branch.", "step")
	v.With("cost-min").Add(40)
	v.With("budget-capped").Add(2)
	r.Gauge("billcap_budget_pool_usd", "Carryover pool.").Set(-12.5)
	h := r.Histogram("billcap_decide_seconds", "Decision latency.", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(30)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP billcap_budget_pool_usd Carryover pool.
# TYPE billcap_budget_pool_usd gauge
billcap_budget_pool_usd -12.5
# HELP billcap_decide_seconds Decision latency.
# TYPE billcap_decide_seconds histogram
billcap_decide_seconds_bucket{le="0.1"} 1
billcap_decide_seconds_bucket{le="1"} 2
billcap_decide_seconds_bucket{le="+Inf"} 3
billcap_decide_seconds_sum 30.55
billcap_decide_seconds_count 3
# HELP billcap_decide_step_total Decisions by branch.
# TYPE billcap_decide_step_total counter
billcap_decide_step_total{step="budget-capped"} 2
billcap_decide_step_total{step="cost-min"} 40
# HELP billcap_decide_total Decisions taken.
# TYPE billcap_decide_total counter
billcap_decide_total 42
`
	if b.String() != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", b.String(), want)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.CounterVec("m", "", "p").With("a\"b\\c\nd").Inc()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `m{p="a\"b\\c\nd"} 1`
	if !strings.Contains(b.String(), want) {
		t.Errorf("escaped line %q not in:\n%s", want, b.String())
	}
}

func TestFormatFloat(t *testing.T) {
	for v, want := range map[float64]string{
		math.Inf(1):  "+Inf",
		math.Inf(-1): "-Inf",
		1.5:          "1.5",
		1e9:          "1e+09",
	} {
		if got := formatFloat(v); got != want {
			t.Errorf("formatFloat(%v) = %q, want %q", v, got, want)
		}
	}
}

// TestRegistryRace hammers get-or-create, updates and exposition from many
// goroutines; run under -race it proves the registry is concurrency-safe
// (issue acceptance criterion).
func TestRegistryRace(t *testing.T) {
	r := NewRegistry()
	const workers = 16
	const iters = 400
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				r.Counter("race_total", "x").Inc()
				r.Gauge("race_gauge", "x").Set(float64(i))
				r.Histogram("race_hist", "x", DefBuckets).Observe(float64(i) / 100)
				r.CounterVec("race_vec", "x", "w").With(fmt.Sprint(w % 4)).Inc()
				if i%50 == 0 {
					if err := r.WritePrometheus(io.Discard); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if got := r.Counter("race_total", "x").Value(); got != workers*iters {
		t.Fatalf("race_total = %v, want %d", got, workers*iters)
	}
	var sum float64
	for w := 0; w < 4; w++ {
		sum += r.CounterVec("race_vec", "x", "w").With(fmt.Sprint(w)).Value()
	}
	if sum != workers*iters {
		t.Fatalf("race_vec children sum = %v, want %d", sum, workers*iters)
	}
	if got := r.Histogram("race_hist", "x", DefBuckets).Count(); got != workers*iters {
		t.Fatalf("race_hist count = %d, want %d", got, workers*iters)
	}
}

package workload

import (
	"fmt"
	"strings"
	"testing"
)

// wikiLines fabricates WikiBench-format lines: reqsPerHour requests in each
// of the given consecutive hours starting at epoch hour 330000 (≈ Oct 2007).
func wikiLines(reqsPerHour []int) string {
	var b strings.Builder
	counter := 0
	const baseHour = 330000
	for h, n := range reqsPerHour {
		for k := 0; k < n; k++ {
			counter++
			epoch := float64((baseHour+h)*3600) + float64(k)*3599.0/float64(n+1)
			fmt.Fprintf(&b, "%d %.3f http://en.wikipedia.org/wiki/Page%d -\n", counter, epoch, k)
		}
	}
	return b.String()
}

func TestReadWikiBench(t *testing.T) {
	in := wikiLines([]int{5, 3, 8})
	tr, err := ReadWikiBench(strings.NewReader(in), WikiBenchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 3 {
		t.Fatalf("hours = %d, want 3", tr.Len())
	}
	// The paper's ×10 sampling correction is the default scale.
	want := []float64{50, 30, 80}
	for h, w := range want {
		if tr.At(h) != w {
			t.Errorf("hour %d = %v, want %v", h, tr.At(h), w)
		}
	}
}

func TestReadWikiBenchCustomScale(t *testing.T) {
	in := wikiLines([]int{4})
	tr, err := ReadWikiBench(strings.NewReader(in), WikiBenchOptions{Scale: 2.5})
	if err != nil {
		t.Fatal(err)
	}
	if tr.At(0) != 10 {
		t.Errorf("scaled count = %v, want 10", tr.At(0))
	}
}

func TestReadWikiBenchSkipsCommentsAndBlank(t *testing.T) {
	in := "# header\n\n" + wikiLines([]int{2})
	tr, err := ReadWikiBench(strings.NewReader(in), WikiBenchOptions{Scale: 1})
	if err != nil {
		t.Fatal(err)
	}
	if tr.At(0) != 2 {
		t.Errorf("count = %v", tr.At(0))
	}
}

func TestReadWikiBenchEmptyHoursInside(t *testing.T) {
	// Hour 1 has zero requests: the bucket must exist with rate 0.
	var b strings.Builder
	b.WriteString("1 1188000000.5 http://x -\n") // hour H
	b.WriteString("2 1188007200.1 http://y -\n") // hour H+2
	tr, err := ReadWikiBench(strings.NewReader(b.String()), WikiBenchOptions{Scale: 1})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 3 || tr.At(1) != 0 {
		t.Fatalf("trace = %v", tr.Rates)
	}
}

func TestReadWikiBenchErrors(t *testing.T) {
	cases := []string{
		"",                        // empty
		"1\n",                     // too few fields
		"1 notatime http://x -\n", // bad timestamp
		"1 -5 http://x -\n",       // nonpositive timestamp
		"1 1188007200 http://x -\n1 1188000000 http://y -\n", // backwards
	}
	for _, in := range cases {
		if _, err := ReadWikiBench(strings.NewReader(in), WikiBenchOptions{}); err == nil {
			t.Errorf("accepted %q", in)
		}
	}
	// A gap beyond MaxGapHours is rejected.
	gap := "1 1188000000 http://x -\n2 1188600000 http://y -\n" // ≈166 h apart
	if _, err := ReadWikiBench(strings.NewReader(gap), WikiBenchOptions{MaxGapHours: 100}); err == nil {
		t.Error("accepted a 166-hour gap")
	}
	if _, err := ReadWikiBench(strings.NewReader(wikiLines([]int{1})), WikiBenchOptions{Scale: -1}); err == nil {
		t.Error("accepted negative scale")
	}
}

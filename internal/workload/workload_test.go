package workload

import (
	"math"
	"testing"
)

func TestValidate(t *testing.T) {
	good := DefaultWikipedia()
	if err := good.Validate(); err != nil {
		t.Fatalf("default config rejected: %v", err)
	}
	bad := []func(*GenConfig){
		func(c *GenConfig) { c.Hours = 0 },
		func(c *GenConfig) { c.BaseRate = 0 },
		func(c *GenConfig) { c.DailyAmp = 1.0 },
		func(c *GenConfig) { c.DailyAmp = -0.1 },
		func(c *GenConfig) { c.WeekendDip = 1.0 },
		func(c *GenConfig) { c.NoiseSigma = -1 },
	}
	for i, mut := range bad {
		c := DefaultWikipedia()
		mut(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestSyntheticDeterministic(t *testing.T) {
	c := DefaultWikipedia()
	a, err := Synthetic(c)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Synthetic(c)
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != c.Hours || b.Len() != c.Hours {
		t.Fatalf("lengths %d/%d, want %d", a.Len(), b.Len(), c.Hours)
	}
	for i := 0; i < a.Len(); i++ {
		if a.At(i) != b.At(i) {
			t.Fatalf("hour %d differs between identical seeds", i)
		}
	}
	c2 := c
	c2.Seed++
	d, _ := Synthetic(c2)
	same := true
	for i := 0; i < a.Len(); i++ {
		if a.At(i) != d.At(i) {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical traces")
	}
}

func TestSyntheticShape(t *testing.T) {
	c := DefaultWikipedia()
	c.NoiseSigma = 0 // deterministic shape checks
	tr, err := Synthetic(c)
	if err != nil {
		t.Fatal(err)
	}
	// Diurnal: the peak hour beats the trough hour on every weekday.
	peak := int(c.PeakHour)
	trough := (peak + 12) % 24
	for day := 0; day < 5; day++ {
		if tr.At(day*24+peak) <= tr.At(day*24+trough) {
			t.Errorf("day %d: peak %v not above trough %v",
				day, tr.At(day*24+peak), tr.At(day*24+trough))
		}
	}
	// Weekly: Saturday noon below Monday noon.
	if tr.At(5*24+12) >= tr.At(12) {
		t.Errorf("weekend dip missing: sat %v vs mon %v", tr.At(5*24+12), tr.At(12))
	}
	// Growth: same hour four weeks later is larger.
	if tr.At(4*HoursPerWeek+12) <= tr.At(12) {
		t.Errorf("growth missing")
	}
	// Everything positive.
	for i := 0; i < tr.Len(); i++ {
		if tr.At(i) <= 0 {
			t.Fatalf("nonpositive rate at hour %d", i)
		}
	}
}

func TestInjectFlashCrowd(t *testing.T) {
	c := DefaultWikipedia()
	c.NoiseSigma = 0
	tr, _ := Synthetic(c)
	fc := FlashCrowd{StartHour: 100, Duration: 11, Peak: 3}
	out := tr.Inject(fc)
	// Center hour multiplied by the full peak.
	center := 105
	if !closeRel(out.At(center), 3*tr.At(center), 1e-9) {
		t.Errorf("center %v, want 3× base %v", out.At(center), tr.At(center))
	}
	// Edges barely changed, outside untouched.
	if out.At(99) != tr.At(99) || out.At(111) != tr.At(111) {
		t.Errorf("hours outside the event changed")
	}
	if out.At(100) != tr.At(100) {
		t.Errorf("ramp start should be ×1, got %v vs %v", out.At(100), tr.At(100))
	}
	// Original untouched.
	if tr.At(center) == out.At(center) {
		t.Errorf("Inject mutated the receiver")
	}
	// Degenerate events are no-ops.
	same := tr.Inject(FlashCrowd{StartHour: 5, Duration: 0, Peak: 9})
	if same.At(5) != tr.At(5) {
		t.Errorf("zero-duration event changed the trace")
	}
	one := tr.Inject(FlashCrowd{StartHour: 7, Duration: 1, Peak: 2})
	if !closeRel(one.At(7), 2*tr.At(7), 1e-9) {
		t.Errorf("single-hour event: %v, want 2× %v", one.At(7), tr.At(7))
	}
}

func TestInjectOutOfRangeIgnored(t *testing.T) {
	c := DefaultWikipedia()
	c.Hours = 24
	tr, _ := Synthetic(c)
	out := tr.Inject(FlashCrowd{StartHour: 20, Duration: 10, Peak: 2})
	if out.Len() != 24 {
		t.Fatalf("length changed")
	}
}

func TestSplit(t *testing.T) {
	p, o := Split(100, 0.8)
	if p != 80 || o != 20 {
		t.Errorf("Split = %v/%v, want 80/20", p, o)
	}
	p, o = Split(100, -1)
	if p != 0 || o != 100 {
		t.Errorf("clamped low Split = %v/%v", p, o)
	}
	p, o = Split(100, 2)
	if p != 100 || o != 0 {
		t.Errorf("clamped high Split = %v/%v", p, o)
	}
}

func TestSlice(t *testing.T) {
	c := DefaultWikipedia()
	tr, _ := Synthetic(c)
	sub := tr.Slice(10, 20)
	if sub.Len() != 10 || sub.At(0) != tr.At(10) {
		t.Errorf("Slice wrong: len %d first %v", sub.Len(), sub.At(0))
	}
	sub.Rates[0] = -1
	if tr.At(10) == -1 {
		t.Errorf("Slice aliases the parent trace")
	}
}

func closeRel(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*(1+math.Abs(b))
}

package workload

import (
	"strings"
	"testing"
)

// FuzzReadWikiBench checks the trace parser never panics and that accepted
// traces have consistent shape.
func FuzzReadWikiBench(f *testing.F) {
	f.Add("1 1188000000.5 http://en.wikipedia.org/wiki/X -\n")
	f.Add("# comment\n\n1 1188000000 u -\n2 1188003600 v -\n")
	f.Add("1 notatime u -\n")
	f.Add("1 1188007200 u -\n2 1188000000 v -\n")
	f.Add("")
	f.Fuzz(func(t *testing.T, src string) {
		tr, err := ReadWikiBench(strings.NewReader(src), WikiBenchOptions{Scale: 1})
		if err != nil {
			return
		}
		if tr.Len() == 0 {
			t.Fatal("accepted trace with zero hours")
		}
		total := 0.0
		for i := 0; i < tr.Len(); i++ {
			if tr.At(i) < 0 {
				t.Fatalf("negative hourly rate at %d", i)
			}
			total += tr.At(i)
		}
		if total <= 0 {
			t.Fatal("accepted trace with zero total requests")
		}
	})
}

package workload

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"billcap/internal/timeseries"
)

// The paper's workload is the WikiBench trace of Wikipedia.org requests
// (Urdaneta et al., ref [25]): a 10% sample of all requests from Oct 1 to
// Nov 30, 2007, which the paper scales ×10 "to emulate the accurate number
// of the incoming requests". Each trace line is
//
//	<counter> <epoch seconds, fractional> <url> <save flag>
//
// ReadWikiBench aggregates such raw request lines into the hourly
// arrival-rate trace the rest of this repository consumes.

// WikiBenchOptions tune the aggregation.
type WikiBenchOptions struct {
	// Scale multiplies every hourly count (the paper uses 10 to undo the
	// 10% sampling). 0 → 10.
	Scale float64
	// MaxGapHours caps how many consecutive empty hours are tolerated
	// inside the trace before it is rejected as corrupt. 0 → 24.
	MaxGapHours int
}

// ReadWikiBench parses raw WikiBench request lines into an hourly Trace.
// Lines must be time-ordered (the published traces are). Blank lines and
// lines starting with '#' are skipped.
func ReadWikiBench(r io.Reader, opt WikiBenchOptions) (Trace, error) {
	if opt.Scale == 0 {
		opt.Scale = 10
	}
	if opt.Scale < 0 {
		return Trace{}, fmt.Errorf("workload: negative scale %v", opt.Scale)
	}
	if opt.MaxGapHours == 0 {
		opt.MaxGapHours = 24
	}

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	var (
		counts    []float64
		firstHour int64 = -1
		prevHour  int64 = -1
		lineNo    int
	)
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return Trace{}, fmt.Errorf("workload: line %d: want \"counter epoch url flag\", got %q", lineNo, line)
		}
		epoch, err := strconv.ParseFloat(fields[1], 64)
		if err != nil || epoch <= 0 {
			return Trace{}, fmt.Errorf("workload: line %d: bad timestamp %q", lineNo, fields[1])
		}
		hour := int64(epoch) / 3600
		if firstHour < 0 {
			firstHour = hour
			prevHour = hour
		}
		if hour < prevHour {
			return Trace{}, fmt.Errorf("workload: line %d: timestamps go backwards", lineNo)
		}
		if gap := hour - prevHour; gap > int64(opt.MaxGapHours) {
			return Trace{}, fmt.Errorf("workload: line %d: %d-hour gap in the trace", lineNo, gap)
		}
		idx := int(hour - firstHour)
		for len(counts) <= idx {
			counts = append(counts, 0)
		}
		counts[idx]++
		prevHour = hour
	}
	if err := sc.Err(); err != nil {
		return Trace{}, fmt.Errorf("workload: %w", err)
	}
	if len(counts) == 0 {
		return Trace{}, fmt.Errorf("workload: no requests in the trace")
	}
	rates := make(timeseries.Series, len(counts))
	for i, c := range counts {
		rates[i] = c * opt.Scale
	}
	return Trace{Rates: rates}, nil
}

// Package workload produces the hourly Internet-request arrival traces the
// experiments run on.
//
// The paper replays a two-month Wikipedia.org trace (Oct–Nov 2007, 10 %
// sample scaled ×10): a strongly diurnal, weekly-patterned series where
// October serves as budgeting history and November as the evaluated month.
// That trace is not redistributable, so Synthetic reconstructs its documented
// structure — diurnal cycle, weekday/weekend pattern, slow growth, lognormal
// noise — deterministically from a seed; real traces in the timeseries CSV
// format load via timeseries.ReadCSV. The capping algorithms consume only
// the hourly arrival rates, so the shape is what matters (see DESIGN.md).
package workload

import (
	"fmt"
	"math"
	"math/rand"

	"billcap/internal/timeseries"
)

// HoursPerWeek is the number of hourly slots in the weekly pattern.
const HoursPerWeek = 168

// Trace is an hourly arrival-rate series in requests per hour, starting at
// hour 0 = Monday 00:00.
type Trace struct {
	Rates timeseries.Series
}

// Len returns the number of hours.
func (t Trace) Len() int { return len(t.Rates) }

// At returns the arrival rate of hour i.
func (t Trace) At(i int) float64 { return t.Rates[i] }

// Slice returns the sub-trace of hours [from, to).
func (t Trace) Slice(from, to int) Trace {
	return Trace{Rates: t.Rates[from:to].Clone()}
}

// GenConfig parameterizes the synthetic trace generator.
type GenConfig struct {
	// Seed drives the deterministic noise stream.
	Seed int64
	// Hours is the trace length; 2 months ≈ 1464.
	Hours int
	// BaseRate is the long-run mean arrival rate in requests/hour.
	BaseRate float64
	// DailyAmp in [0,1) is the relative amplitude of the diurnal cycle.
	DailyAmp float64
	// PeakHour in [0,24) is the local hour of the diurnal peak.
	PeakHour float64
	// WeekendDip in [0,1) multiplies weekend load by (1−WeekendDip).
	WeekendDip float64
	// GrowthPerWeek is the compounding weekly growth factor (e.g. 0.01).
	GrowthPerWeek float64
	// NoiseSigma is the σ of mean-one lognormal multiplicative noise.
	NoiseSigma float64
}

// Validate reports the first configuration error.
func (c GenConfig) Validate() error {
	switch {
	case c.Hours <= 0:
		return fmt.Errorf("workload: Hours = %d", c.Hours)
	case c.BaseRate <= 0:
		return fmt.Errorf("workload: BaseRate = %v", c.BaseRate)
	case c.DailyAmp < 0 || c.DailyAmp >= 1:
		return fmt.Errorf("workload: DailyAmp = %v outside [0,1)", c.DailyAmp)
	case c.WeekendDip < 0 || c.WeekendDip >= 1:
		return fmt.Errorf("workload: WeekendDip = %v outside [0,1)", c.WeekendDip)
	case c.NoiseSigma < 0:
		return fmt.Errorf("workload: NoiseSigma = %v", c.NoiseSigma)
	}
	return nil
}

// DefaultWikipedia returns the generator configuration used by the
// experiments: two months at the scale that loads the three paper sites to
// the fleet utilization implied by the paper's dollar figures.
func DefaultWikipedia() GenConfig {
	return GenConfig{
		Seed:          20071001, // trace epoch: Oct 1, 2007
		Hours:         2 * 4 * HoursPerWeek,
		BaseRate:      1.9e12,
		DailyAmp:      0.45,
		PeakHour:      20,
		WeekendDip:    0.12,
		GrowthPerWeek: 0.005,
		NoiseSigma:    0.06,
	}
}

// Synthetic generates a deterministic trace from the configuration.
func Synthetic(c GenConfig) (Trace, error) {
	if err := c.Validate(); err != nil {
		return Trace{}, err
	}
	rng := rand.New(rand.NewSource(c.Seed))
	rates := make(timeseries.Series, c.Hours)
	for h := 0; h < c.Hours; h++ {
		hourOfDay := float64(h % 24)
		day := (h / 24) % 7 // 0 = Monday
		week := float64(h / HoursPerWeek)

		diurnal := 1 + c.DailyAmp*math.Cos(2*math.Pi*(hourOfDay-c.PeakHour)/24)
		weekly := 1.0
		if day >= 5 {
			weekly = 1 - c.WeekendDip
		}
		growth := math.Pow(1+c.GrowthPerWeek, week)
		noise := 1.0
		if c.NoiseSigma > 0 {
			// Mean-one lognormal: exp(σZ − σ²/2).
			noise = math.Exp(c.NoiseSigma*rng.NormFloat64() - c.NoiseSigma*c.NoiseSigma/2)
		}
		rates[h] = c.BaseRate * diurnal * weekly * growth * noise
	}
	return Trace{Rates: rates}, nil
}

// FlashCrowd describes a breaking-news event: load multiplied by up to Peak
// over [StartHour, StartHour+Duration) with a linear ramp up and down (the
// paper's motivating scenario for bill capping).
type FlashCrowd struct {
	StartHour int
	Duration  int
	Peak      float64 // multiplier at the center, ≥ 1
}

// Inject returns a copy of the trace with the flash crowd applied. Portions
// outside the trace are ignored.
func (t Trace) Inject(fc FlashCrowd) Trace {
	out := Trace{Rates: t.Rates.Clone()}
	if fc.Duration <= 0 || fc.Peak <= 1 {
		return out
	}
	for i := 0; i < fc.Duration; i++ {
		h := fc.StartHour + i
		if h < 0 || h >= len(out.Rates) {
			continue
		}
		// Triangular ramp peaking mid-event.
		pos := float64(i) / float64(fc.Duration-1)
		if fc.Duration == 1 {
			pos = 0.5
		}
		shape := 1 - math.Abs(2*pos-1)
		out.Rates[h] *= 1 + (fc.Peak-1)*shape
	}
	return out
}

// Split divides an arrival rate into premium and ordinary portions. The
// paper assumes 80 % premium / 20 % ordinary (§VII-C).
func Split(rate, premiumFrac float64) (premium, ordinary float64) {
	if premiumFrac < 0 {
		premiumFrac = 0
	}
	if premiumFrac > 1 {
		premiumFrac = 1
	}
	premium = rate * premiumFrac
	return premium, rate - premium
}

// Package powergrid implements a lossless DC optimal power flow (DC-OPF)
// over a small transmission network and derives locational marginal prices
// (LMP) from it — the mechanism behind the paper's Figure 1.
//
// The paper quotes its pricing policies from "the well-known PJM five-bus
// system" (refs [6], [13]): five generators, three consumer buses, and LMP
// step changes "when a new constraint, either transmission or generation,
// becomes binding as load increases". This package reproduces that
// derivation end to end: the OPF is a linear program solved with the
// repository's own simplex solver, each bus's LMP is the dual value of its
// power-balance row, and sweeping the system load turns the LMP profile of
// a consumer bus into exactly the kind of step function internal/pricing
// hard-codes.
package powergrid

import (
	"fmt"
	"math"

	"billcap/internal/lp"
	"billcap/internal/piecewise"
)

// Generator is one dispatchable unit.
type Generator struct {
	Name          string
	Bus           int
	CapacityMW    float64
	CostUSDPerMWh float64
}

// Line is a transmission line with a DC susceptance derived from its
// per-unit reactance on a 100 MVA base.
type Line struct {
	From, To  int
	Reactance float64 // per unit; flow(MW) = 100·Δθ/Reactance
	LimitMW   float64 // thermal limit, applies in both directions
}

// System is the grid model.
type System struct {
	BusNames []string
	Gens     []Generator
	Lines    []Line
	// RefBus is the angle reference (slack) bus.
	RefBus int
}

// Validate reports the first configuration error.
func (s *System) Validate() error {
	n := len(s.BusNames)
	if n < 2 {
		return fmt.Errorf("powergrid: %d buses", n)
	}
	if s.RefBus < 0 || s.RefBus >= n {
		return fmt.Errorf("powergrid: reference bus %d out of range", s.RefBus)
	}
	if len(s.Gens) == 0 {
		return fmt.Errorf("powergrid: no generators")
	}
	for _, g := range s.Gens {
		if g.Bus < 0 || g.Bus >= n {
			return fmt.Errorf("powergrid: generator %s on unknown bus %d", g.Name, g.Bus)
		}
		if g.CapacityMW <= 0 || g.CostUSDPerMWh < 0 {
			return fmt.Errorf("powergrid: generator %s capacity %v cost %v", g.Name, g.CapacityMW, g.CostUSDPerMWh)
		}
	}
	if len(s.Lines) == 0 {
		return fmt.Errorf("powergrid: no lines")
	}
	for i, l := range s.Lines {
		if l.From < 0 || l.From >= n || l.To < 0 || l.To >= n || l.From == l.To {
			return fmt.Errorf("powergrid: line %d endpoints %d-%d", i, l.From, l.To)
		}
		if l.Reactance <= 0 || l.LimitMW <= 0 {
			return fmt.Errorf("powergrid: line %d reactance %v limit %v", i, l.Reactance, l.LimitMW)
		}
	}
	return nil
}

// Dispatch is one OPF solution.
type Dispatch struct {
	// GenMW is each generator's output.
	GenMW []float64
	// FlowMW is each line's flow (positive From→To).
	FlowMW []float64
	// LMP is the locational marginal price at every bus in $/MWh: the dual
	// of the bus's power-balance row.
	LMP []float64
	// CostUSD is the total generation cost per hour.
	CostUSD float64
}

// Solve runs the DC-OPF for the given per-bus load vector (MW).
func (s *System) Solve(loadMW []float64) (Dispatch, error) {
	if err := s.Validate(); err != nil {
		return Dispatch{}, err
	}
	n := len(s.BusNames)
	if len(loadMW) != n {
		return Dispatch{}, fmt.Errorf("powergrid: %d loads for %d buses", len(loadMW), n)
	}
	for b, L := range loadMW {
		if L < 0 || math.IsNaN(L) {
			return Dispatch{}, fmt.Errorf("powergrid: bad load %v at bus %d", L, b)
		}
	}

	p := lp.NewProblem()
	// Generator outputs.
	genVar := make([]int, len(s.Gens))
	for k, g := range s.Gens {
		genVar[k] = p.AddVar("g:"+g.Name, g.CostUSDPerMWh)
		p.AddConstraint([]lp.Term{{Var: genVar[k], Coef: 1}}, lp.LE, g.CapacityMW)
	}
	// Bus angles as θ⁺−θ⁻ (free variables); the reference bus is pinned at 0
	// by having no variables.
	thPos := make([]int, n)
	thNeg := make([]int, n)
	for b := 0; b < n; b++ {
		if b == s.RefBus {
			thPos[b], thNeg[b] = -1, -1
			continue
		}
		thPos[b] = p.AddVar(fmt.Sprintf("th+%d", b), 0)
		thNeg[b] = p.AddVar(fmt.Sprintf("th-%d", b), 0)
	}
	// angleTerms appends c·θ_b to a term list (no-op for the reference bus).
	angleTerms := func(terms []lp.Term, b int, c float64) []lp.Term {
		if b == s.RefBus {
			return terms
		}
		return append(terms, lp.Term{Var: thPos[b], Coef: c}, lp.Term{Var: thNeg[b], Coef: -c})
	}

	// Line limits: |B·(θf−θt)| ≤ limit.
	for _, l := range s.Lines {
		b := 100 / l.Reactance
		var fwd []lp.Term
		fwd = angleTerms(fwd, l.From, b)
		fwd = angleTerms(fwd, l.To, -b)
		if len(fwd) > 0 { // a line between two reference buses cannot exist
			p.AddConstraint(fwd, lp.LE, l.LimitMW)
			rev := make([]lp.Term, len(fwd))
			for i, t := range fwd {
				rev[i] = lp.Term{Var: t.Var, Coef: -t.Coef}
			}
			p.AddConstraint(rev, lp.LE, l.LimitMW)
		}
	}

	// Bus balance: Σ gen_b − Σ outflow + Σ inflow = load_b.
	balanceRow := make([]int, n)
	for b := 0; b < n; b++ {
		var terms []lp.Term
		for k, g := range s.Gens {
			if g.Bus == b {
				terms = append(terms, lp.Term{Var: genVar[k], Coef: 1})
			}
		}
		for _, l := range s.Lines {
			susceptance := 100 / l.Reactance
			switch b {
			case l.From: // outflow B(θb − θto)
				terms = angleTerms(terms, l.From, -susceptance)
				terms = angleTerms(terms, l.To, susceptance)
			case l.To: // inflow B(θfrom − θb)
				terms = angleTerms(terms, l.From, susceptance)
				terms = angleTerms(terms, l.To, -susceptance)
			}
		}
		if len(terms) == 0 {
			return Dispatch{}, fmt.Errorf("powergrid: bus %d is isolated", b)
		}
		balanceRow[b] = p.AddConstraint(terms, lp.EQ, loadMW[b])
	}

	sol := p.Solve()
	switch sol.Status {
	case lp.Optimal:
	case lp.Infeasible:
		return Dispatch{}, fmt.Errorf("powergrid: load %v MW not servable (generation or transmission binding)", sum(loadMW))
	default:
		return Dispatch{}, fmt.Errorf("powergrid: OPF ended %v", sol.Status)
	}

	d := Dispatch{
		GenMW:   make([]float64, len(s.Gens)),
		FlowMW:  make([]float64, len(s.Lines)),
		LMP:     make([]float64, n),
		CostUSD: sol.Objective,
	}
	for k := range s.Gens {
		d.GenMW[k] = sol.X[genVar[k]]
	}
	angle := func(b int) float64 {
		if b == s.RefBus {
			return 0
		}
		return sol.X[thPos[b]] - sol.X[thNeg[b]]
	}
	for i, l := range s.Lines {
		d.FlowMW[i] = 100 / l.Reactance * (angle(l.From) - angle(l.To))
	}
	for b := 0; b < n; b++ {
		d.LMP[b] = sol.Duals[balanceRow[b]]
	}
	return d, nil
}

func sum(xs []float64) float64 {
	t := 0.0
	for _, x := range xs {
		t += x
	}
	return t
}

// PJM5Bus returns the five-bus example system of the paper's §II: buses
// A–E, generators at Alta, Park City (A), Solitude (C), Sundance (D) and
// Brighton (E), consumers at B, C and D, and a binding E–D line. Exact
// parameters follow the published PJM five-bus study up to rounding.
func PJM5Bus() *System {
	const (
		A = 0
		B = 1
		C = 2
		D = 3
		E = 4
	)
	return &System{
		BusNames: []string{"A", "B", "C", "D", "E"},
		Gens: []Generator{
			{Name: "Alta", Bus: A, CapacityMW: 110, CostUSDPerMWh: 14},
			{Name: "ParkCity", Bus: A, CapacityMW: 100, CostUSDPerMWh: 15},
			{Name: "Solitude", Bus: C, CapacityMW: 520, CostUSDPerMWh: 30},
			{Name: "Sundance", Bus: D, CapacityMW: 200, CostUSDPerMWh: 30},
			{Name: "Brighton", Bus: E, CapacityMW: 600, CostUSDPerMWh: 10},
		},
		Lines: []Line{
			{From: A, To: B, Reactance: 2.81, LimitMW: 400},
			{From: A, To: D, Reactance: 3.04, LimitMW: 400},
			{From: A, To: E, Reactance: 0.64, LimitMW: 400},
			{From: B, To: C, Reactance: 1.08, LimitMW: 400},
			{From: C, To: D, Reactance: 2.97, LimitMW: 400},
			{From: D, To: E, Reactance: 2.97, LimitMW: 240},
		},
		RefBus: 0,
	}
}

// ConsumerBuses returns the paper's three consumer locations in PJM5Bus
// order (B, C, D).
func ConsumerBuses() []int { return []int{1, 2, 3} }

// DeriveStepPolicies sweeps the total system load from stepMW to maxMW
// (distributed across buses by shares, which must sum to 1) and compresses
// each consumer bus's LMP-vs-load profile into a step function — the
// derivation behind the paper's Figure 1.
func DeriveStepPolicies(s *System, shares []float64, consumers []int, maxMW, stepMW float64) ([]piecewise.StepFunction, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	n := len(s.BusNames)
	if len(shares) != n {
		return nil, fmt.Errorf("powergrid: %d shares for %d buses", len(shares), n)
	}
	if stepMW <= 0 || maxMW <= stepMW {
		return nil, fmt.Errorf("powergrid: bad sweep [%v, %v]", stepMW, maxMW)
	}
	var totalShare float64
	for _, sh := range shares {
		if sh < 0 {
			return nil, fmt.Errorf("powergrid: negative share %v", sh)
		}
		totalShare += sh
	}
	if math.Abs(totalShare-1) > 1e-9 {
		return nil, fmt.Errorf("powergrid: shares sum to %v, want 1", totalShare)
	}

	steps := int(maxMW / stepMW)
	prices := make([][]float64, len(consumers))
	loads := make([]float64, 0, steps)
	loadVec := make([]float64, n)
	for k := 1; k <= steps; k++ {
		L := float64(k) * stepMW
		for b := range loadVec {
			loadVec[b] = L * shares[b]
		}
		d, err := s.Solve(loadVec)
		if err != nil {
			break // beyond feasible system load: the sweep ends here
		}
		loads = append(loads, L)
		for ci, bus := range consumers {
			prices[ci] = append(prices[ci], d.LMP[bus])
		}
	}
	if len(loads) < 2 {
		return nil, fmt.Errorf("powergrid: sweep produced %d feasible points", len(loads))
	}

	out := make([]piecewise.StepFunction, len(consumers))
	for ci := range consumers {
		thresholds, rates := compressSteps(loads, prices[ci])
		fn, err := piecewise.New(thresholds, rates)
		if err != nil {
			return nil, fmt.Errorf("powergrid: consumer %d: %w", ci, err)
		}
		out[ci] = fn
	}
	return out, nil
}

// compressSteps merges consecutive sweep points with (numerically) equal
// prices into segments.
func compressSteps(loads, prices []float64) (thresholds, rates []float64) {
	const eps = 1e-6
	rates = append(rates, round6(prices[0]))
	for i := 1; i < len(prices); i++ {
		r := round6(prices[i])
		if math.Abs(r-rates[len(rates)-1]) > eps {
			thresholds = append(thresholds, loads[i])
			rates = append(rates, r)
		}
	}
	return thresholds, rates
}

func round6(x float64) float64 { return math.Round(x*1e6) / 1e6 }

package powergrid

import (
	"math"
	"testing"
)

func near(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestValidate(t *testing.T) {
	if err := PJM5Bus().Validate(); err != nil {
		t.Fatalf("PJM five-bus rejected: %v", err)
	}
	bad := []func(*System){
		func(s *System) { s.BusNames = s.BusNames[:1] },
		func(s *System) { s.RefBus = 99 },
		func(s *System) { s.Gens = nil },
		func(s *System) { s.Gens[0].Bus = 77 },
		func(s *System) { s.Gens[0].CapacityMW = 0 },
		func(s *System) { s.Lines = nil },
		func(s *System) { s.Lines[0].From = s.Lines[0].To },
		func(s *System) { s.Lines[0].Reactance = 0 },
	}
	for i, mut := range bad {
		s := PJM5Bus()
		mut(s)
		if err := s.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestSolveZeroLoad(t *testing.T) {
	s := PJM5Bus()
	d, err := s.Solve(make([]float64, 5))
	if err != nil {
		t.Fatal(err)
	}
	if d.CostUSD != 0 {
		t.Errorf("zero-load cost %v", d.CostUSD)
	}
	// Marginal price everywhere is the cheapest unit, Brighton at $10 —
	// the 10.00 $/MWh base price the paper's Figure 1 shows for location B.
	for b, lmp := range d.LMP {
		if !near(lmp, 10, 1e-6) {
			t.Errorf("bus %d LMP %v, want 10 (Brighton marginal)", b, lmp)
		}
	}
}

func TestSolveBalances(t *testing.T) {
	s := PJM5Bus()
	load := []float64{0, 150, 150, 150, 0}
	d, err := s.Solve(load)
	if err != nil {
		t.Fatal(err)
	}
	genSum := 0.0
	for _, g := range d.GenMW {
		genSum += g
	}
	if !near(genSum, 450, 1e-6) {
		t.Errorf("generation %v != load 450", genSum)
	}
	// Every generator within capacity.
	for k, g := range d.GenMW {
		if g < -1e-9 || g > s.Gens[k].CapacityMW+1e-9 {
			t.Errorf("gen %s output %v outside [0, %v]", s.Gens[k].Name, g, s.Gens[k].CapacityMW)
		}
	}
	// Every line within limits.
	for i, f := range d.FlowMW {
		if math.Abs(f) > s.Lines[i].LimitMW+1e-6 {
			t.Errorf("line %d flow %v beyond ±%v", i, f, s.Lines[i].LimitMW)
		}
	}
	// Per-bus balance: gen − load = net export.
	for b := range s.BusNames {
		gen := 0.0
		for k, g := range s.Gens {
			if g.Bus == b {
				gen += d.GenMW[k]
			}
		}
		net := 0.0
		for i, l := range s.Lines {
			if l.From == b {
				net += d.FlowMW[i]
			}
			if l.To == b {
				net -= d.FlowMW[i]
			}
		}
		if !near(gen-load[b], net, 1e-6) {
			t.Errorf("bus %d: gen−load %v != net export %v", b, gen-load[b], net)
		}
	}
}

func TestCheapestDispatchFirst(t *testing.T) {
	// At light load everything comes from Brighton ($10).
	s := PJM5Bus()
	d, err := s.Solve([]float64{0, 100, 100, 100, 0})
	if err != nil {
		t.Fatal(err)
	}
	if !near(d.GenMW[4], 300, 1e-6) {
		t.Errorf("Brighton output %v, want 300", d.GenMW[4])
	}
	if !near(d.CostUSD, 3000, 1e-6) {
		t.Errorf("cost %v, want 3000", d.CostUSD)
	}
}

func TestLMPStepsUpUnderLoad(t *testing.T) {
	// As load grows past Brighton's 600 MW (plus the E-D line limit),
	// pricier units set the margin and consumer LMPs rise.
	s := PJM5Bus()
	light, err := s.Solve([]float64{0, 100, 100, 100, 0})
	if err != nil {
		t.Fatal(err)
	}
	heavy, err := s.Solve([]float64{0, 280, 280, 280, 0})
	if err != nil {
		t.Fatal(err)
	}
	for _, bus := range ConsumerBuses() {
		if heavy.LMP[bus] <= light.LMP[bus] {
			t.Errorf("bus %d LMP did not rise: %v -> %v", bus, light.LMP[bus], heavy.LMP[bus])
		}
	}
}

func TestCongestionSeparatesPrices(t *testing.T) {
	// Find a load level where a constraint binds and LMPs differ by bus —
	// the locational in "locational marginal pricing".
	s := PJM5Bus()
	for _, L := range []float64{600, 750, 900} {
		d, err := s.Solve([]float64{0, L / 3, L / 3, L / 3, 0})
		if err != nil {
			continue
		}
		spread := 0.0
		for _, b1 := range ConsumerBuses() {
			for _, b2 := range ConsumerBuses() {
				if diff := math.Abs(d.LMP[b1] - d.LMP[b2]); diff > spread {
					spread = diff
				}
			}
		}
		if spread > 1e-6 {
			return // found locational separation
		}
	}
	t.Error("no load level produced locational price separation")
}

func TestInfeasibleBeyondCapacity(t *testing.T) {
	s := PJM5Bus()
	// Total generation is 1530 MW; ask for more.
	if _, err := s.Solve([]float64{0, 600, 600, 600, 0}); err == nil {
		t.Error("impossible load accepted")
	}
	if _, err := s.Solve([]float64{0, -5, 0, 0, 0}); err == nil {
		t.Error("negative load accepted")
	}
	if _, err := s.Solve([]float64{1, 2}); err == nil {
		t.Error("wrong arity accepted")
	}
}

func TestDeriveStepPolicies(t *testing.T) {
	s := PJM5Bus()
	shares := []float64{0, 1.0 / 3, 1.0 / 3, 1.0 / 3, 0}
	fns, err := DeriveStepPolicies(s, shares, ConsumerBuses(), 1500, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(fns) != 3 {
		t.Fatalf("policies = %d", len(fns))
	}
	for ci, fn := range fns {
		// The paper's Figure 1 structure: a low flat start with step
		// changes as constraints bind.
		if fn.NumSegments() < 2 {
			t.Errorf("consumer %d: only %d segment(s)", ci, fn.NumSegments())
		}
		if !near(fn.Rates()[0], 10, 1e-6) {
			t.Errorf("consumer %d: base price %v, want 10 (Brighton)", ci, fn.Rates()[0])
		}
		// Later rates are higher than the base.
		if fn.Max() <= fn.Rates()[0] {
			t.Errorf("consumer %d: no price increase across the sweep", ci)
		}
	}
	// The derived policy evaluates like the OPF at a probe load.
	probe := 900.0
	d, err := s.Solve([]float64{0, probe / 3, probe / 3, probe / 3, 0})
	if err != nil {
		t.Fatal(err)
	}
	for ci, bus := range ConsumerBuses() {
		if got := fns[ci].Eval(probe); !near(got, d.LMP[bus], 1e-4) {
			t.Errorf("consumer %d: derived policy %v vs OPF LMP %v at %v MW", ci, got, d.LMP[bus], probe)
		}
	}
}

func TestDeriveValidation(t *testing.T) {
	s := PJM5Bus()
	good := []float64{0, 1.0 / 3, 1.0 / 3, 1.0 / 3, 0}
	if _, err := DeriveStepPolicies(s, good[:2], ConsumerBuses(), 1000, 10); err == nil {
		t.Error("share arity accepted")
	}
	if _, err := DeriveStepPolicies(s, []float64{0, 1, 1, 1, 0}, ConsumerBuses(), 1000, 10); err == nil {
		t.Error("shares not summing to 1 accepted")
	}
	if _, err := DeriveStepPolicies(s, good, ConsumerBuses(), 5, 10); err == nil {
		t.Error("bad sweep range accepted")
	}
}

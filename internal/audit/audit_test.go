package audit

import (
	"math"
	"strings"
	"testing"
)

// tariff is a two-band step price: $50 below 10 MW total draw, $80 at or
// above.
func tariff(totalMW float64) float64 {
	if totalMW < 10 {
		return 50
	}
	return 80
}

func oneSite() []Site {
	return []Site{{
		MaxLambda:   100,
		MWPerLambda: 0.05,
		IdleMW:      1,
		PowerCapMW:  8,
		SlackMW:     0.01,
		DemandMW:    2,
		Price:       tariff,
	}}
}

// claimFor derives an internally consistent claim from a lambda.
func claimFor(s Site, lambda float64) Claim {
	p := s.MWPerLambda*lambda + s.IdleMW
	rate := s.Price(s.DemandMW + p)
	return Claim{Lambda: lambda, PowerMW: p, Rate: rate, CostUSD: rate * p, On: true}
}

func TestCheckAcceptsConsistentClaim(t *testing.T) {
	sites := oneSite()
	c := claimFor(sites[0], 60)
	in := Input{TotalLambda: 60, BudgetUSD: 1000, ServeAll: true}
	if err := Check(sites, []Claim{c}, in); err != nil {
		t.Fatalf("consistent claim rejected: %v", err)
	}
}

func TestCheckRejections(t *testing.T) {
	sites := oneSite()
	good := claimFor(sites[0], 60)
	in := Input{TotalLambda: 60, BudgetUSD: 1000, ServeAll: true}

	cases := []struct {
		name   string
		mutate func(*Claim, *[]Site, *Input)
		want   string
	}{
		{"over SLA limit", func(c *Claim, _ *[]Site, in *Input) {
			*c = claimFor(oneSite()[0], 150)
			in.TotalLambda = 150
		}, "SLA limit"},
		{"power model mismatch", func(c *Claim, _ *[]Site, _ *Input) {
			c.PowerMW *= 0.5
		}, "model says"},
		{"over power cap", func(c *Claim, s *[]Site, _ *Input) {
			(*s)[0].PowerCapMW = 1
		}, "supplier cap"},
		{"wrong tariff band", func(c *Claim, _ *[]Site, _ *Input) {
			c.Rate = 999
			c.CostUSD = c.Rate * c.PowerMW
		}, "tariff says"},
		{"cost not rate times power", func(c *Claim, _ *[]Site, _ *Input) {
			c.CostUSD *= 2
		}, "tariff re-derivation"},
		{"off but loaded", func(c *Claim, _ *[]Site, _ *Input) {
			c.On = false
		}, "off but carries"},
		{"down but loaded", func(_ *Claim, s *[]Site, _ *Input) {
			(*s)[0].Down = true
		}, "while down"},
		{"NaN power", func(c *Claim, _ *[]Site, _ *Input) {
			c.PowerMW = math.NaN()
		}, "non-finite"},
		{"negative lambda", func(c *Claim, _ *[]Site, _ *Input) {
			c.Lambda = -1
		}, "negative"},
		{"over budget", func(_ *Claim, _ *[]Site, in *Input) {
			in.BudgetUSD = 1
		}, "over budget"},
		{"serve-all shortfall", func(_ *Claim, _ *[]Site, in *Input) {
			in.TotalLambda = 90
		}, "arrivals"},
		{"served exceeds arrivals", func(_ *Claim, _ *[]Site, in *Input) {
			in.TotalLambda = 10
			in.ServeAll = false
		}, "exceeds arrivals"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c, s, i := good, oneSite(), in
			tc.mutate(&c, &s, &i)
			err := Check(s, []Claim{c}, i)
			if err == nil {
				t.Fatal("violation accepted")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestCheckArityMismatch(t *testing.T) {
	if err := Check(oneSite(), nil, Input{}); err == nil {
		t.Fatal("arity mismatch accepted")
	}
}

func TestCheckBudgetExempt(t *testing.T) {
	sites := oneSite()
	c := claimFor(sites[0], 60)
	in := Input{TotalLambda: 60, BudgetUSD: 1, BudgetExempt: true}
	if err := Check(sites, []Claim{c}, in); err != nil {
		t.Fatalf("budget-exempt branch rejected for budget: %v", err)
	}
}

func TestCheckBoundaryGrace(t *testing.T) {
	// Load lands exactly on the 10 MW band boundary: Price(10) = 80, but the
	// planner deliberately priced it an epsilon inside the cheaper band. The
	// auditor must accept the cheaper rate rather than reject a correct plan.
	sites := oneSite()
	sites[0].MaxLambda = 200
	s := sites[0]
	lambda := (10 - s.DemandMW - s.IdleMW) / s.MWPerLambda
	p := s.MWPerLambda*lambda + s.IdleMW
	c := Claim{Lambda: lambda, PowerMW: p, Rate: 50, CostUSD: 50 * p, On: true}
	in := Input{TotalLambda: lambda, BudgetUSD: 1000, ServeAll: true}
	if err := Check(sites, []Claim{c}, in); err != nil {
		t.Fatalf("boundary-priced claim rejected: %v", err)
	}
}

func TestCheckAllOffIsFeasibleWhenNotServeAll(t *testing.T) {
	sites := oneSite()
	in := Input{TotalLambda: 60, BudgetUSD: 0}
	if err := Check(sites, []Claim{{}}, in); err != nil {
		t.Fatalf("all-off shed plan rejected: %v", err)
	}
}

// Package audit is an independent feasibility check for capping decisions.
// The optimizer's answer is "feasible within gap" by its own arithmetic; a
// wrong-but-plausible allocation — over a supplier power cap, priced off the
// wrong tariff band, or quietly over budget — is worse than a declared
// failure, because it violates the contract the whole system exists to keep.
// This package therefore re-derives every claim from first principles with no
// solver code shared: plain float arithmetic over the site models and a
// pricing closure, nothing imported from the MILP, LP or decomposition
// packages. A rejection is a reason to demote down the degradation ladder,
// never a reason to crash the hour.
package audit

import (
	"fmt"
	"math"
)

// relTol is the relative slack granted to every numeric comparison: the
// solver works in floating point and its answers are honest to ~1e-9; an
// audit stricter than the arithmetic would reject correct plans.
const relTol = 1e-6

// priceGrace is how far below the claimed operating point the auditor will
// re-evaluate the tariff when the claimed rate disagrees: the planner
// deliberately prices loads an epsilon inside their half-open price band, so
// a load sitting exactly on a band boundary may legitimately carry the rate
// of the band just below.
const priceGrace = 2e-6

// Site is the auditor's independent copy of one data center's physics: the
// affine power model, the SLA throughput limit, the supplier cap, and the
// tariff as an opaque closure (total draw in MW → $/MWh).
type Site struct {
	MaxLambda   float64 // SLA admission limit, requests/hour
	MWPerLambda float64 // affine power model slope (A)
	IdleMW      float64 // affine power model intercept (B)
	PowerCapMW  float64 // supplier contract cap
	SlackMW     float64 // rounding slack the planner may use above the cap
	DemandMW    float64 // non-IT draw already on the meter this hour
	Down        bool    // site is out this hour: any load on it is a violation
	Price       func(totalMW float64) float64
}

// Claim is what the solver asserts for one site.
type Claim struct {
	Lambda  float64
	PowerMW float64
	Rate    float64 // $/MWh the solver priced the site at
	CostUSD float64
	On      bool
}

// Input is the hour's contract: the load to place and the money to place it
// with.
type Input struct {
	TotalLambda   float64
	PremiumLambda float64
	BudgetUSD     float64
	// ServeAll marks the cost-min branch, whose feasibility claim includes
	// serving the entire arrival rate — a shortfall there is a wrong answer
	// even if every site-level constraint holds.
	ServeAll bool
	// BudgetExempt marks the mandatory-premium branches (premium-only and
	// over-capacity), where the paper requires overrunning the budget rather
	// than dropping premium load; the budget row is advisory there.
	BudgetExempt bool
}

// Check verifies a claimed allocation against the site models and the hour's
// contract. It returns nil when every constraint holds within tolerance, and
// a single descriptive error naming the first violated constraint otherwise.
func Check(sites []Site, claims []Claim, in Input) error {
	if len(claims) != len(sites) {
		return fmt.Errorf("audit: %d site claims for %d sites", len(claims), len(sites))
	}

	var servedLambda, totalCost float64
	for i, c := range claims {
		s := sites[i]
		if bad(c.Lambda) || bad(c.PowerMW) || bad(c.Rate) || bad(c.CostUSD) {
			return fmt.Errorf("audit: site %d: non-finite claim λ=%v p=%v rate=%v cost=%v",
				i, c.Lambda, c.PowerMW, c.Rate, c.CostUSD)
		}
		if c.Lambda < 0 || c.PowerMW < 0 || c.Rate < 0 || c.CostUSD < 0 {
			return fmt.Errorf("audit: site %d: negative claim λ=%v p=%v rate=%v cost=%v",
				i, c.Lambda, c.PowerMW, c.Rate, c.CostUSD)
		}
		if !c.On {
			if c.Lambda > 0 || c.PowerMW > 0 || c.CostUSD > 0 {
				return fmt.Errorf("audit: site %d: off but carries λ=%v p=%v cost=%v",
					i, c.Lambda, c.PowerMW, c.CostUSD)
			}
			continue
		}
		if s.Down {
			return fmt.Errorf("audit: site %d: loaded while down", i)
		}
		if c.Lambda > s.MaxLambda*(1+relTol)+relTol {
			return fmt.Errorf("audit: site %d: λ=%v exceeds SLA limit %v", i, c.Lambda, s.MaxLambda)
		}
		wantP := s.MWPerLambda*c.Lambda + s.IdleMW
		if !close2(c.PowerMW, wantP) {
			return fmt.Errorf("audit: site %d: claimed power %v MW, model says %v MW", i, c.PowerMW, wantP)
		}
		if c.PowerMW > s.PowerCapMW+s.SlackMW+relTol*(1+s.PowerCapMW) {
			return fmt.Errorf("audit: site %d: power %v MW over supplier cap %v MW (+%v slack)",
				i, c.PowerMW, s.PowerCapMW, s.SlackMW)
		}
		if s.Price != nil {
			load := s.DemandMW + c.PowerMW
			grace := priceGrace * (1 + load)
			if !close2(c.Rate, s.Price(load)) && !close2(c.Rate, s.Price(math.Max(0, load-grace))) {
				return fmt.Errorf("audit: site %d: claimed rate %v $/MWh, tariff says %v at %v MW",
					i, c.Rate, s.Price(load), load)
			}
		}
		if !close2(c.CostUSD, c.Rate*c.PowerMW) {
			return fmt.Errorf("audit: site %d: claimed cost %v, rate×power says %v", i, c.CostUSD, c.Rate*c.PowerMW)
		}
		servedLambda += c.Lambda
		totalCost += c.CostUSD
	}

	// A +Inf budget is the legitimate "uncapped" sentinel; anything else
	// non-finite is corrupt.
	if bad(in.TotalLambda) || math.IsNaN(in.BudgetUSD) || math.IsInf(in.BudgetUSD, -1) {
		return fmt.Errorf("audit: non-finite input λ=%v budget=%v", in.TotalLambda, in.BudgetUSD)
	}
	slack := relTol * (1 + in.TotalLambda)
	if servedLambda > in.TotalLambda+slack {
		return fmt.Errorf("audit: served %v exceeds arrivals %v", servedLambda, in.TotalLambda)
	}
	if in.ServeAll && servedLambda < in.TotalLambda-slack {
		return fmt.Errorf("audit: cost-min branch served %v of %v arrivals", servedLambda, in.TotalLambda)
	}
	if !in.BudgetExempt && totalCost > in.BudgetUSD*(1+relTol)+relTol {
		return fmt.Errorf("audit: cost %v over budget %v", totalCost, in.BudgetUSD)
	}
	return nil
}

func bad(v float64) bool { return math.IsNaN(v) || math.IsInf(v, 0) }

// close2 is symmetric relative-tolerance equality with an absolute floor.
func close2(a, b float64) bool {
	return math.Abs(a-b) <= relTol*(1+math.Max(math.Abs(a), math.Abs(b)))
}

// Package audit is an independent feasibility check for capping decisions.
// The optimizer's answer is "feasible within gap" by its own arithmetic; a
// wrong-but-plausible allocation — over a supplier power cap, priced off the
// wrong tariff band, or quietly over budget — is worse than a declared
// failure, because it violates the contract the whole system exists to keep.
// This package therefore re-derives every claim from first principles with no
// solver code shared: plain float arithmetic over the site models and a
// pricing closure, nothing imported from the MILP, LP or decomposition
// packages. A rejection is a reason to demote down the degradation ladder,
// never a reason to crash the hour.
package audit

import (
	"fmt"
	"math"
)

// relTol is the relative slack granted to every numeric comparison: the
// solver works in floating point and its answers are honest to ~1e-9; an
// audit stricter than the arithmetic would reject correct plans.
const relTol = 1e-6

// priceGrace is how far below the claimed operating point the auditor will
// re-evaluate the tariff when the claimed rate disagrees: the planner
// deliberately prices loads an epsilon inside their half-open price band, so
// a load sitting exactly on a band boundary may legitimately carry the rate
// of the band just below.
const priceGrace = 2e-6

// Site is the auditor's independent copy of one data center's physics: the
// affine power model, the SLA throughput limit, the supplier cap, and the
// tariff as an opaque closure (total draw in MW → $/MWh). The tariff-engine
// fields extend the check to demand charges, two-settlement and batteries;
// their zero values audit the original energy-only model.
type Site struct {
	MaxLambda   float64 // SLA admission limit, requests/hour
	MWPerLambda float64 // affine power model slope (A)
	IdleMW      float64 // affine power model intercept (B)
	PowerCapMW  float64 // supplier contract cap
	SlackMW     float64 // rounding slack the planner may use above the cap
	DemandMW    float64 // non-IT draw already on the meter this hour
	Down        bool    // site is out this hour: any load on it is a violation
	Price       func(totalMW float64) float64

	// Demand charge: the billing-period rate and the ledger's peak-so-far.
	// The hour's demand component must equal rate × max(0, grid − peak).
	DemandRateUSDPerMW float64
	PeakMW             float64

	// Two-settlement: when on, grid energy settles at RTPriceUSDPerMWh and
	// the day-ahead position (Price(demand+commit) − RT)·commit is part of
	// the hour's bill whatever the dispatch does.
	TwoSettlement    bool
	RTPriceUSDPerMWh float64
	CommitMW         float64

	// Battery physics (capacity 0 = no battery): any claimed charge or
	// discharge must fit the rates, the remaining room and the charge.
	BatCapacityMWh    float64
	BatMaxChargeMW    float64
	BatMaxDischargeMW float64
	BatEfficiency     float64
	BatSoCMWh         float64
}

// Claim is what the solver asserts for one site. GridMW/ChargeMW/DischargeMW
// and the cost components are tariff-engine extensions; legacy claims that
// leave GridMW zero while asserting IT power audit as grid = IT (no battery).
type Claim struct {
	Lambda  float64
	PowerMW float64 // IT draw
	Rate    float64 // $/MWh the solver priced the site's grid energy at
	CostUSD float64 // energy + demand-charge increment
	On      bool

	GridMW      float64 // metered draw: PowerMW + ChargeMW − DischargeMW
	ChargeMW    float64
	DischargeMW float64
	EnergyUSD   float64 // Rate × GridMW (0 = unclaimed, derived from CostUSD)
	DemandUSD   float64 // DemandRate × max(0, GridMW − PeakMW)
}

// Input is the hour's contract: the load to place and the money to place it
// with.
type Input struct {
	TotalLambda   float64
	PremiumLambda float64
	BudgetUSD     float64
	// SettlementUSD is the solver's claimed two-settlement position; the
	// auditor re-derives it from the sites' commitments and rejects a
	// mismatch. It also counts against the budget (it can be negative).
	SettlementUSD float64
	// ServeAll marks the cost-min branch, whose feasibility claim includes
	// serving the entire arrival rate — a shortfall there is a wrong answer
	// even if every site-level constraint holds.
	ServeAll bool
	// BudgetExempt marks the mandatory-premium branches (premium-only and
	// over-capacity), where the paper requires overrunning the budget rather
	// than dropping premium load; the budget row is advisory there.
	BudgetExempt bool
}

// Check verifies a claimed allocation against the site models and the hour's
// contract. It returns nil when every constraint holds within tolerance, and
// a single descriptive error naming the first violated constraint otherwise.
func Check(sites []Site, claims []Claim, in Input) error {
	if len(claims) != len(sites) {
		return fmt.Errorf("audit: %d site claims for %d sites", len(claims), len(sites))
	}

	var servedLambda, totalCost, settlement float64
	for i, c := range claims {
		s := sites[i]
		// The day-ahead position accrues whatever the dispatch does — even
		// for a site that ends up off, its commitment settles.
		if s.TwoSettlement && s.CommitMW > 0 && s.Price != nil {
			settlement += (s.Price(s.DemandMW+s.CommitMW) - s.RTPriceUSDPerMWh) * s.CommitMW
		}
		if bad(c.Lambda) || bad(c.PowerMW) || bad(c.Rate) || bad(c.CostUSD) ||
			bad(c.GridMW) || bad(c.ChargeMW) || bad(c.DischargeMW) || bad(c.EnergyUSD) || bad(c.DemandUSD) {
			return fmt.Errorf("audit: site %d: non-finite claim λ=%v p=%v rate=%v cost=%v grid=%v c=%v g=%v",
				i, c.Lambda, c.PowerMW, c.Rate, c.CostUSD, c.GridMW, c.ChargeMW, c.DischargeMW)
		}
		if c.Lambda < 0 || c.PowerMW < 0 || c.Rate < 0 || c.CostUSD < 0 ||
			c.GridMW < 0 || c.ChargeMW < 0 || c.DischargeMW < 0 || c.DemandUSD < 0 {
			return fmt.Errorf("audit: site %d: negative claim λ=%v p=%v rate=%v cost=%v grid=%v c=%v g=%v",
				i, c.Lambda, c.PowerMW, c.Rate, c.CostUSD, c.GridMW, c.ChargeMW, c.DischargeMW)
		}
		if !c.On {
			if c.Lambda > 0 || c.PowerMW > 0 || c.CostUSD > 0 ||
				c.GridMW > 0 || c.ChargeMW > 0 || c.DischargeMW > 0 {
				return fmt.Errorf("audit: site %d: off but carries λ=%v p=%v cost=%v grid=%v",
					i, c.Lambda, c.PowerMW, c.CostUSD, c.GridMW)
			}
			continue
		}
		if s.Down {
			return fmt.Errorf("audit: site %d: loaded while down", i)
		}
		if c.Lambda > s.MaxLambda*(1+relTol)+relTol {
			return fmt.Errorf("audit: site %d: λ=%v exceeds SLA limit %v", i, c.Lambda, s.MaxLambda)
		}
		wantP := s.MWPerLambda*c.Lambda + s.IdleMW
		if !close2(c.PowerMW, wantP) {
			return fmt.Errorf("audit: site %d: claimed power %v MW, model says %v MW", i, c.PowerMW, wantP)
		}
		// Legacy energy-only claims assert IT power without a grid figure:
		// no battery action means grid = IT.
		grid := c.GridMW
		if grid == 0 && c.ChargeMW == 0 && c.DischargeMW == 0 {
			grid = c.PowerMW
		}
		// Battery feasibility: the plan must be executable by the physical
		// store this hour — rates, room at the claimed efficiency, and
		// charge all bound it; discharge can at most offset the IT draw.
		if s.BatCapacityMWh <= 0 {
			if c.ChargeMW > relTol || c.DischargeMW > relTol {
				return fmt.Errorf("audit: site %d: battery action c=%v g=%v without a battery",
					i, c.ChargeMW, c.DischargeMW)
			}
		} else {
			room := math.Max(0, s.BatCapacityMWh-s.BatSoCMWh)
			if c.ChargeMW > s.BatMaxChargeMW*(1+relTol)+relTol {
				return fmt.Errorf("audit: site %d: charge %v MW over rate %v", i, c.ChargeMW, s.BatMaxChargeMW)
			}
			if s.BatEfficiency > 0 && c.ChargeMW*s.BatEfficiency > room*(1+relTol)+relTol {
				return fmt.Errorf("audit: site %d: charge %v MW overfills the store (room %v MWh at η=%v)",
					i, c.ChargeMW, room, s.BatEfficiency)
			}
			if lim := math.Min(s.BatMaxDischargeMW, s.BatSoCMWh); c.DischargeMW > lim*(1+relTol)+relTol {
				return fmt.Errorf("audit: site %d: discharge %v MW over limit %v", i, c.DischargeMW, lim)
			}
			if c.DischargeMW > c.PowerMW*(1+relTol)+relTol {
				return fmt.Errorf("audit: site %d: discharge %v MW exceeds IT draw %v (export)",
					i, c.DischargeMW, c.PowerMW)
			}
		}
		if !close2(grid, c.PowerMW+c.ChargeMW-c.DischargeMW) {
			return fmt.Errorf("audit: site %d: grid %v MW, IT+charge−discharge says %v MW",
				i, grid, c.PowerMW+c.ChargeMW-c.DischargeMW)
		}
		// The supplier cap binds the meter, not the IT draw.
		if grid > s.PowerCapMW+s.SlackMW+relTol*(1+s.PowerCapMW) {
			return fmt.Errorf("audit: site %d: grid draw %v MW over supplier cap %v MW (+%v slack)",
				i, grid, s.PowerCapMW, s.SlackMW)
		}
		if s.TwoSettlement {
			if !close2(c.Rate, s.RTPriceUSDPerMWh) {
				return fmt.Errorf("audit: site %d: claimed rate %v $/MWh, real-time price is %v",
					i, c.Rate, s.RTPriceUSDPerMWh)
			}
		} else if s.Price != nil {
			load := s.DemandMW + grid
			grace := priceGrace * (1 + load)
			if !close2(c.Rate, s.Price(load)) && !close2(c.Rate, s.Price(math.Max(0, load-grace))) {
				return fmt.Errorf("audit: site %d: claimed rate %v $/MWh, tariff says %v at %v MW",
					i, c.Rate, s.Price(load), load)
			}
		}
		wantEnergy := c.Rate * grid
		wantDemand := s.DemandRateUSDPerMW * math.Max(0, grid-s.PeakMW)
		if !close2(c.CostUSD, wantEnergy+wantDemand) {
			return fmt.Errorf("audit: site %d: claimed cost %v, tariff re-derivation says %v",
				i, c.CostUSD, wantEnergy+wantDemand)
		}
		if c.EnergyUSD != 0 && !close2(c.EnergyUSD, wantEnergy) {
			return fmt.Errorf("audit: site %d: claimed energy %v, rate×grid says %v", i, c.EnergyUSD, wantEnergy)
		}
		if c.DemandUSD != 0 && !close2(c.DemandUSD, wantDemand) {
			return fmt.Errorf("audit: site %d: claimed demand charge %v, re-derivation says %v",
				i, c.DemandUSD, wantDemand)
		}
		servedLambda += c.Lambda
		totalCost += c.CostUSD
	}

	// A +Inf budget is the legitimate "uncapped" sentinel; anything else
	// non-finite is corrupt.
	if bad(in.TotalLambda) || math.IsNaN(in.BudgetUSD) || math.IsInf(in.BudgetUSD, -1) || bad(in.SettlementUSD) {
		return fmt.Errorf("audit: non-finite input λ=%v budget=%v settlement=%v",
			in.TotalLambda, in.BudgetUSD, in.SettlementUSD)
	}
	if !close2(in.SettlementUSD, settlement) {
		return fmt.Errorf("audit: claimed settlement %v, commitments re-derive to %v", in.SettlementUSD, settlement)
	}
	slack := relTol * (1 + in.TotalLambda)
	if servedLambda > in.TotalLambda+slack {
		return fmt.Errorf("audit: served %v exceeds arrivals %v", servedLambda, in.TotalLambda)
	}
	if in.ServeAll && servedLambda < in.TotalLambda-slack {
		return fmt.Errorf("audit: cost-min branch served %v of %v arrivals", servedLambda, in.TotalLambda)
	}
	bill := totalCost + settlement
	if !in.BudgetExempt && bill > in.BudgetUSD*(1+relTol)+relTol*(1+math.Abs(bill)) {
		return fmt.Errorf("audit: bill %v (dispatch %v + settlement %v) over budget %v",
			bill, totalCost, settlement, in.BudgetUSD)
	}
	return nil
}

func bad(v float64) bool { return math.IsNaN(v) || math.IsInf(v, 0) }

// close2 is symmetric relative-tolerance equality with an absolute floor.
func close2(a, b float64) bool {
	return math.Abs(a-b) <= relTol*(1+math.Max(math.Abs(a), math.Abs(b)))
}

// Command traceinfo summarizes an hourly trace CSV (as produced by
// cmd/tracegen or timeseries.WriteCSV): totals, quantiles, peak-to-mean
// ratio and the hour-of-week profile the budgeter will see.
//
// Usage:
//
//	tracegen -kind workload | traceinfo
//	traceinfo workload.csv
//	traceinfo -wikibench requests.trace    # raw WikiBench request lines
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"billcap/internal/timeseries"
	"billcap/internal/workload"
)

func main() {
	wiki := flag.Bool("wikibench", false, "input is raw WikiBench request lines, not CSV")
	scale := flag.Float64("scale", 10, "WikiBench sampling correction factor")
	flag.Parse()

	var in io.Reader = os.Stdin
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fail(err)
		}
		defer f.Close()
		in = f
	}

	var s timeseries.Series
	if *wiki {
		tr, err := workload.ReadWikiBench(in, workload.WikiBenchOptions{Scale: *scale})
		if err != nil {
			fail(err)
		}
		s = tr.Rates
	} else {
		var err error
		s, err = timeseries.ReadCSV(in)
		if err != nil {
			fail(err)
		}
	}
	if len(s) == 0 {
		fail(fmt.Errorf("empty trace"))
	}

	mean := s.Mean()
	fmt.Printf("hours:         %d (%.1f weeks)\n", len(s), float64(len(s))/168)
	fmt.Printf("total:         %.6g\n", s.Sum())
	fmt.Printf("mean hourly:   %.6g\n", mean)
	fmt.Printf("min / max:     %.6g / %.6g\n", s.Min(), s.Max())
	fmt.Printf("p50 p90 p99:   %.6g  %.6g  %.6g\n", s.Quantile(0.5), s.Quantile(0.9), s.Quantile(0.99))
	if mean > 0 {
		fmt.Printf("peak-to-mean:  %.3f\n", s.Max()/mean)
	}

	if len(s) >= 168 {
		fmt.Printf("\nhour-of-week profile (relative to the mean):\n")
		prof := s.HourOfWeekMeans()
		days := []string{"Mon", "Tue", "Wed", "Thu", "Fri", "Sat", "Sun"}
		for d := 0; d < 7; d++ {
			fmt.Printf("  %s ", days[d])
			for h := 0; h < 24; h += 3 {
				v := prof[d*24+h] / mean
				fmt.Printf("%5.2f", v)
			}
			fmt.Println()
		}
		fmt.Println("       00h  03h  06h  09h  12h  15h  18h  21h")
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "traceinfo:", err)
	os.Exit(1)
}

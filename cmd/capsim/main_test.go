package main

import "testing"

func TestRunUnknownExperiment(t *testing.T) {
	if err := run("nope", 1, "", "text"); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestRunUnknownFormat(t *testing.T) {
	if err := run("fig1", 1, "", "xml"); err == nil {
		t.Error("unknown format accepted")
	}
}

func TestRunFig1AllFormats(t *testing.T) {
	for _, format := range []string{"text", "md", "csv"} {
		if err := run("fig1", 1, "", format); err != nil {
			t.Errorf("format %s: %v", format, err)
		}
	}
}

func TestRunWithSeriesDump(t *testing.T) {
	dir := t.TempDir()
	if err := run("fig3", 1, dir, "text"); err != nil {
		t.Fatal(err)
	}
}

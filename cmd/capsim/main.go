// Command capsim regenerates the paper's evaluation tables and figures
// (paper §VII) on the reproduction's scenario.
//
// Usage:
//
//	capsim -exp all                 # every experiment, full 4-week month
//	capsim -exp fig3 -weeks 1       # one experiment on a 1-week month
//	capsim -exp fig78 -series out/  # also dump the hourly series as CSV
//
// Experiments: fig1 fig1derived fig3 fig4 fig56 fig78 fig9 fig10 solver ablation robustness hetero hierarchy baselines battery tariff all.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"billcap/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run: fig1 fig1derived fig3 fig4 fig56 fig78 fig9 fig10 solver ablation robustness hetero hierarchy baselines battery tariff all")
	weeks := flag.Int("weeks", 4, "weeks of the evaluated month to simulate (1-4)")
	seriesDir := flag.String("series", "", "directory to dump hourly series CSVs into (optional)")
	format := flag.String("format", "text", "table output format: text | md | csv")
	flag.Parse()

	if err := run(*exp, *weeks, *seriesDir, *format); err != nil {
		fmt.Fprintln(os.Stderr, "capsim:", err)
		os.Exit(1)
	}
}

func run(exp string, weeks int, seriesDir, format string) error {
	var render func(experiments.Result) string
	switch format {
	case "text":
		render = experiments.Result.Render
	case "md":
		render = func(r experiments.Result) string { return r.Table.RenderMarkdown() }
	case "csv":
		render = func(r experiments.Result) string { return r.Table.RenderCSV() }
	default:
		return fmt.Errorf("unknown format %q (want text, md or csv)", format)
	}
	type runner func() (experiments.Result, error)
	wrap := func(f func(int) (experiments.Result, error)) runner {
		return func() (experiments.Result, error) { return f(weeks) }
	}
	all := []struct {
		name string
		run  runner
	}{
		{"fig1", func() (experiments.Result, error) { return experiments.Fig1(), nil }},
		{"fig1derived", func() (experiments.Result, error) { return experiments.Fig1Derived() }},
		{"fig3", wrap(experiments.Fig3)},
		{"fig4", wrap(experiments.Fig4)},
		{"fig56", wrap(experiments.Fig56)},
		{"fig78", wrap(experiments.Fig78)},
		{"fig9", wrap(experiments.Fig9)},
		{"fig10", wrap(experiments.Fig10)},
		{"solver", func() (experiments.Result, error) { return experiments.Solver(nil) }},
		{"ablation", wrap(experiments.Ablation)},
		{"robustness", wrap(experiments.Robustness)},
		{"hetero", func() (experiments.Result, error) { return experiments.Hetero() }},
		{"hierarchy", func() (experiments.Result, error) { return experiments.Hierarchy() }},
		{"baselines", wrap(experiments.Baselines)},
		{"battery", wrap(experiments.Battery)},
		{"flashcrowd", wrap(experiments.FlashCrowd)},
		{"tariff", wrap(experiments.Tariff)},
	}
	ran := false
	for _, e := range all {
		if exp != "all" && exp != e.name {
			continue
		}
		ran = true
		res, err := e.run()
		if err != nil {
			return fmt.Errorf("%s: %w", e.name, err)
		}
		fmt.Println(render(res))
		if seriesDir != "" && len(res.Series) > 0 {
			if err := dumpSeries(seriesDir, e.name, res); err != nil {
				return err
			}
		}
	}
	if !ran {
		return fmt.Errorf("unknown experiment %q", exp)
	}
	return nil
}

func dumpSeries(dir, exp string, res experiments.Result) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for name, s := range res.Series {
		slug := strings.ReplaceAll(strings.ReplaceAll(name, " ", "-"), "/", "-")
		path := filepath.Join(dir, fmt.Sprintf("%s_%s.csv", exp, slug))
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := s.WriteCSV(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%d hours)\n", path, len(s))
	}
	return nil
}

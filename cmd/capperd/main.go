// Command capperd serves the bill capper as a JSON HTTP control API — what
// a production request-routing tier would call once per invocation period
// (paper §III).
//
// Usage:
//
//	capperd -addr :8080 -variant 1
//
// Endpoints: GET /healthz, GET /v1/sites, GET /v1/policies,
// POST /v1/decide, POST /v1/realize. Example:
//
//	curl -s localhost:8080/v1/decide -d '{
//	  "totalLambda": 1.5e12, "premiumLambda": 1.2e12,
//	  "demandMW": [170, 190, 150], "budgetUSD": 900
//	}'
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"time"

	"billcap/internal/api"
	"billcap/internal/core"
	"billcap/internal/dcmodel"
	"billcap/internal/pricing"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	variant := flag.Int("variant", 1, "pricing policy variant (0-3)")
	sites := flag.Int("sites", 3, "number of data centers (3 = the paper's; more = synthetic)")
	flag.Parse()

	if *variant < 0 || *variant > 3 {
		log.Fatal("capperd: variant must be 0..3")
	}
	var dcs []*dcmodel.Site
	var pols []pricing.Policy
	if *sites == 3 {
		dcs = dcmodel.PaperSites()
		pols = pricing.PaperPolicies(pricing.PolicyVariant(*variant))
	} else {
		dcs = dcmodel.SyntheticSites(*sites)
		pols = pricing.Synthetic(*sites)
	}
	srv, err := api.New(dcs, pols, core.Options{})
	if err != nil {
		log.Fatalf("capperd: %v", err)
	}
	hs := &http.Server{
		Addr:         *addr,
		Handler:      srv.Handler(),
		ReadTimeout:  10 * time.Second,
		WriteTimeout: 30 * time.Second,
	}
	fmt.Printf("capperd: %d sites, %v, listening on %s\n", len(dcs), pricing.PolicyVariant(*variant), *addr)
	log.Fatal(hs.ListenAndServe())
}

// Command capperd serves the bill capper as a JSON HTTP control API — what
// a production request-routing tier would call once per invocation period
// (paper §III).
//
// Usage:
//
//	capperd -addr :8080 -variant 1
//
// Endpoints: GET /healthz, GET /readyz, GET /metrics, GET /debug/pprof/,
// GET /v1/sites, GET /v1/policies, POST /v1/decide, POST /v1/decide/batch,
// POST /v1/realize, POST /v1/model, POST /v1/route, POST /v1/route/batch,
// GET /v1/route/table, and with -tariff, GET /v1/tariff.
// Example:
//
//	curl -s localhost:8080/v1/decide -d '{
//	  "totalLambda": 1.5e12, "premiumLambda": 1.2e12,
//	  "demandMW": [170, 190, 150], "budgetUSD": 900
//	}'
//
// The daemon exports Prometheus metrics on /metrics, runtime profiling on
// /debug/pprof/, and on SIGINT/SIGTERM flips /readyz to 503 and drains
// in-flight decisions before exiting.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"syscall"
	"time"

	"billcap/internal/api"
	"billcap/internal/core"
	"billcap/internal/dcmodel"
	"billcap/internal/lp"
	"billcap/internal/pricing"
)

// parseBattery reads the -battery flag: capMWh:maxMW:eff with optional
// :socMWh and :valueUSDPerMWh suffixes. The max charge and discharge rates
// share one figure, matching symmetric grid-scale packs.
func parseBattery(s string) (core.BatterySpec, error) {
	parts := strings.Split(s, ":")
	if len(parts) < 3 || len(parts) > 5 {
		return core.BatterySpec{}, fmt.Errorf("want capMWh:maxMW:eff[:socMWh[:valueUSDPerMWh]], got %q", s)
	}
	vals := make([]float64, len(parts))
	for i, p := range parts {
		v, err := strconv.ParseFloat(p, 64)
		if err != nil {
			return core.BatterySpec{}, fmt.Errorf("field %d of %q: %v", i+1, s, err)
		}
		vals[i] = v
	}
	spec := core.BatterySpec{
		CapacityMWh:    vals[0],
		MaxChargeMW:    vals[1],
		MaxDischargeMW: vals[1],
		Efficiency:     vals[2],
	}
	if len(vals) > 3 {
		spec.SoCMWh = vals[3]
	}
	if len(vals) > 4 {
		spec.ValueUSDPerMWh = vals[4]
	}
	return spec, nil
}

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	variant := flag.Int("variant", 1, "pricing policy variant (0-3)")
	sites := flag.Int("sites", 3, "number of data centers (3 = the paper's; more = synthetic)")
	drain := flag.Duration("drain", 10*time.Second, "graceful shutdown timeout for in-flight requests")
	deadline := flag.Duration("decide-deadline", 5*time.Second,
		"per-decision solver deadline; an expiring solve answers with its best incumbent (0 = unbounded)")
	workers := flag.Int("solver-workers", 0,
		"branch-and-bound workers per MILP solve, and the concurrency budget of /v1/decide/batch (0 = GOMAXPROCS)")
	solverCache := flag.Bool("solver-cache", false,
		"incremental hour-over-hour solving: MILP presolve plus a cross-hour warm-start cache (skeleton, basis, incumbent)")
	lpcore := flag.String("lpcore", "",
		"LP core behind every relaxation: sparse (revised simplex, the default) or dense (tableau oracle)")
	decompose := flag.Bool("decompose", false,
		"fleet-scale solving: route hour decisions through Lagrangian dual decomposition when the fleet exceeds -decompose-threshold sites")
	decomposeThreshold := flag.Int("decompose-threshold", 0,
		"fleet size above which -decompose leaves the exact MILP (0 = 20)")
	stateDir := flag.String("state-dir", "",
		"directory for crash-safe state (WAL + snapshots): resilient decisions are durably logged and a restart restores the degradation ladder instead of zeroing it (empty = stateless)")
	driftRatio := flag.Float64("drift-ratio", 2.0,
		"observed/predicted arrival ratio beyond which the data plane re-solves asynchronously and swaps the routing table (must be > 1; 0 disables drift re-solves)")
	tariff := flag.Bool("tariff", false,
		"enable the tariff engine: the server holds the billing-period peak ledger and battery bank, serves GET /v1/tariff, and every non-override decision commits against them")
	demandCharge := flag.Float64("demand-charge", 0,
		"billing-period demand charge in $/MW-month, billed on each site's peak metered draw (implies -tariff)")
	batterySpec := flag.String("battery", "",
		"per-site battery as capMWh:maxMW:eff[:socMWh[:valueUSDPerMWh]], e.g. 40:15:0.9 — the same spec at every site (implies -tariff)")
	flag.Parse()

	core0, err := lp.ParseCore(*lpcore)
	if err != nil {
		log.Fatalf("capperd: %v", err)
	}

	if *variant < 0 || *variant > 3 {
		log.Fatal("capperd: variant must be 0..3")
	}
	var dcs []*dcmodel.Site
	var pols []pricing.Policy
	if *sites == 3 {
		dcs = dcmodel.PaperSites()
		pols = pricing.PaperPolicies(pricing.PolicyVariant(*variant))
	} else {
		dcs = dcmodel.SyntheticSites(*sites)
		pols = pricing.Synthetic(*sites)
	}
	srv, err := api.New(dcs, pols, core.Options{
		SolveDeadline: *deadline,
		SolverWorkers: *workers,
		SolverCache:   *solverCache,
		LPCore:        core0,

		Decompose:          *decompose,
		DecomposeThreshold: *decomposeThreshold,
	})
	if err != nil {
		log.Fatalf("capperd: %v", err)
	}
	if err := srv.SetDriftRatio(*driftRatio); err != nil {
		log.Fatalf("capperd: %v", err)
	}
	if *tariff || *demandCharge > 0 || *batterySpec != "" {
		var specs []core.BatterySpec
		if *batterySpec != "" {
			spec, err := parseBattery(*batterySpec)
			if err != nil {
				log.Fatalf("capperd: -battery: %v", err)
			}
			specs = make([]core.BatterySpec, len(dcs))
			for i := range specs {
				specs[i] = spec
			}
		}
		// Enable before EnableState so a restart restores the peak ledger
		// and battery charge into the live tariff position.
		if err := srv.EnableTariff(*demandCharge, specs); err != nil {
			log.Fatalf("capperd: tariff: %v", err)
		}
		log.Printf("capperd: tariff engine: demand charge %.0f $/MW-month, batteries %v, GET /v1/tariff live",
			*demandCharge, *batterySpec != "")
	}
	if *stateDir != "" {
		info, err := srv.EnableState(*stateDir)
		if err != nil {
			log.Fatalf("capperd: state: %v", err)
		}
		if info.Restored {
			log.Printf("capperd: restored state from %s: hour cursor %d, %d WAL entries replayed, %d WAL corruptions truncated, %d snapshot fallbacks",
				*stateDir, info.Hour, info.WALEntriesReplayed, info.WALCorruptions, info.SnapshotFallbacks)
		} else {
			log.Printf("capperd: fresh state directory %s", *stateDir)
		}
	}
	hs := &http.Server{
		Handler: srv.Handler(),
		// Bound every phase of a connection so a slow or stalled client
		// cannot pin a decision worker: header trickling (Slowloris) dies at
		// ReadHeaderTimeout, a stalled body at ReadTimeout, and idle
		// keep-alives are reaped by IdleTimeout.
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       10 * time.Second,
		// Long enough for /debug/pprof/profile's default 30 s CPU window.
		WriteTimeout: 60 * time.Second,
		IdleTimeout:  120 * time.Second,
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("capperd: listen: %v", err)
	}
	log.Printf("capperd: %d sites, %v, listening on %s", len(dcs), pricing.PolicyVariant(*variant), ln.Addr())
	log.Printf("capperd: timeouts: readHeader=%v read=%v write=%v idle=%v decide=%v drain=%v",
		hs.ReadHeaderTimeout, hs.ReadTimeout, hs.WriteTimeout, hs.IdleTimeout, *deadline, *drain)
	log.Printf("capperd: solver workers: %d (0 = GOMAXPROCS = %d)", *workers, runtime.GOMAXPROCS(0))
	if *driftRatio > 0 {
		log.Printf("capperd: data plane: /v1/route live, drift re-solve at %.2f× predicted arrivals", *driftRatio)
	} else {
		log.Printf("capperd: data plane: /v1/route live, drift re-solve disabled")
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	select {
	case err := <-errc:
		log.Fatalf("capperd: serve: %v", err)
	case <-ctx.Done():
		stop()                // restore default signal handling: a second ^C kills immediately
		srv.SetDraining(true) // /readyz → 503 so load balancers stop sending work
		log.Printf("capperd: shutdown signal, draining for up to %v", *drain)
		sctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := hs.Shutdown(sctx); err != nil {
			log.Printf("capperd: drain timed out: %v", err)
			_ = hs.Close()
			if cerr := srv.CloseState(); cerr != nil {
				log.Printf("capperd: state close: %v", cerr)
			}
			os.Exit(1)
		}
		if err := srv.CloseState(); err != nil {
			log.Printf("capperd: state close: %v", err)
		}
		log.Printf("capperd: drained, bye")
	}
}

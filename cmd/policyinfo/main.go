// Command policyinfo prints the locational pricing policies of the
// reproduction (the data behind the paper's Figure 1), for any of the four
// policy variants, and can evaluate the price at a given regional load.
//
// Usage:
//
//	policyinfo                    # Policy 1 step tables for B, C, D
//	policyinfo -variant 3         # Policy 3
//	policyinfo -load 250          # also show the price at 250 MW
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"billcap/internal/pricing"
)

func main() {
	variant := flag.Int("variant", 1, "pricing policy variant: 0, 1, 2 or 3")
	load := flag.Float64("load", -1, "optionally evaluate the price at this regional load (MW)")
	flag.Parse()

	if *variant < 0 || *variant > 3 {
		fmt.Fprintln(os.Stderr, "policyinfo: variant must be 0..3")
		os.Exit(1)
	}
	v := pricing.PolicyVariant(*variant)
	fmt.Printf("Locational pricing policies — %v\n\n", v)
	for _, p := range pricing.PaperPolicies(v) {
		fmt.Printf("region %s (%s)\n", p.Location, p.Name)
		for k := 0; k < p.Fn.NumSegments(); k++ {
			lo, hi := p.Fn.SegmentBounds(k)
			hiStr := "inf"
			if !math.IsInf(hi, 1) {
				hiStr = fmt.Sprintf("%.0f", hi)
			}
			fmt.Printf("  [%7.0f, %7s) MW  →  %6.2f $/MWh\n", lo, hiStr, p.Fn.Rates()[k])
		}
		if *load >= 0 {
			fmt.Printf("  price at %.1f MW: %.2f $/MWh\n", *load, p.Price(*load))
		}
		fmt.Println()
	}
}

// Command milpsolve solves a (mixed integer) linear program written in the
// small LP text format of internal/lpparse — a stand-in for the lp_solve
// tool the paper's authors used.
//
// Usage:
//
//	milpsolve model.lp
//	milpsolve < model.lp
//
// Example model:
//
//	max: 10a + 13b + 7c
//	cap: 5a + 6b + 4c <= 10
//	bin a b c
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"billcap/internal/lpparse"
	"billcap/internal/milp"
)

func main() {
	maxNodes := flag.Int("maxnodes", 0, "branch-and-bound node limit (0 = default)")
	flag.Parse()

	var in io.Reader = os.Stdin
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fail(err)
		}
		defer f.Close()
		in = f
	}
	parsed, err := lpparse.Parse(in)
	if err != nil {
		fail(err)
	}
	sol := parsed.Problem.SolveWithOptions(milp.Options{MaxNodes: *maxNodes})
	fmt.Printf("status: %v\n", sol.Status)
	if sol.Status != milp.Optimal && sol.Status != milp.Limit || sol.X == nil {
		os.Exit(exitCode(sol.Status))
	}
	fmt.Printf("objective: %g\n", sol.Objective)
	for i, name := range parsed.Vars {
		fmt.Printf("%s = %g\n", name, sol.X[i])
	}
	fmt.Printf("nodes: %d  pivots: %d\n", sol.Nodes, sol.Pivots)
	os.Exit(exitCode(sol.Status))
}

func exitCode(st milp.Status) int {
	if st == milp.Optimal {
		return 0
	}
	return 2
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "milpsolve:", err)
	os.Exit(1)
}

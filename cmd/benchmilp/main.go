// Command benchmilp measures the branch-and-bound worker pool on the
// deterministic hard-knapsack family at paper scale (5·N binaries for N
// sites, paper §IV) and writes the results as JSON for CI artifacts and
// cross-machine comparison.
//
// Usage:
//
//	benchmilp -out BENCH_milp.json          # full run: 4000-node budget, 3 reps
//	benchmilp -quick -out BENCH_milp.json   # CI smoke: 1000-node budget, 1 rep
//
// Every (sites, workers) cell explores the same fixed node budget on the
// same instance, so wall time is directly comparable across worker counts
// and speedup = wall(1 worker) / wall(w workers). GOMAXPROCS is recorded
// because speedup is bounded by the cores actually available — on a 1-CPU
// box every ratio is ≈1 by construction.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"time"

	"billcap/internal/decomp"
	"billcap/internal/lp"
	"billcap/internal/milp"
)

type workerResult struct {
	Workers     int     `json:"workers"`
	WallMS      float64 `json:"wallMS"`
	Nodes       int     `json:"nodes"`
	NodesPerSec float64 `json:"nodesPerSec"`
	Speedup     float64 `json:"speedup"` // wall(1 worker) / wall(this)
	Status      string  `json:"status"`
	Objective   float64 `json:"objective"`
}

type instanceResult struct {
	Sites    int            `json:"sites"`
	Binaries int            `json:"binaries"`
	Results  []workerResult `json:"results"`
}

// incrementalResult compares a cold hour-by-hour re-solve of the paper-hour
// family against the incremental path (presolve + previous hour's optimum
// and root basis as seeds) over the same hour sequence.
type incrementalResult struct {
	Sites         int     `json:"sites"`
	Binaries      int     `json:"binaries"`
	Hours         int     `json:"hours"`
	ColdNodes     int     `json:"coldNodes"`
	WarmNodes     int     `json:"warmNodes"`
	PresolveFixed int     `json:"presolveFixed"` // binaries fixed across all warm hours
	WarmStarts    int     `json:"warmStarts"`    // hours whose seed incumbent was accepted
	ColdWallMS    float64 `json:"coldWallMS"`
	WarmWallMS    float64 `json:"warmWallMS"`
	NodeReduction float64 `json:"nodeReduction"` // 1 − warmNodes/coldNodes
}

// coreResult is one LP core's run of the fixed-budget knapsack instance
// (sequential workers, so node ordering — and thus the explored tree — is
// identical across cores and the wall-clock ratio is a pure LP-core ratio).
type coreResult struct {
	Core             string  `json:"core"`
	WallMS           float64 `json:"wallMS"`
	Nodes            int     `json:"nodes"`
	NodesPerSec      float64 `json:"nodesPerSec"`
	LPIterations     int     `json:"lpIterations"`
	Refactorizations int     `json:"lpRefactorizations"`
	BasisUpdates     int     `json:"lpBasisUpdates"`
	Status           string  `json:"status"`
	Objective        float64 `json:"objective"`
}

// coreCompare pairs the dense tableau oracle against the sparse revised
// simplex on the same instance and node budget.
type coreCompare struct {
	Sites         int        `json:"sites"`
	Binaries      int        `json:"binaries"`
	Dense         coreResult `json:"dense"`
	Sparse        coreResult `json:"sparse"`
	SparseSpeedup float64    `json:"sparseSpeedup"` // dense wall / sparse wall
}

// fleetResult pits the exact MILP against the Lagrangian dual decomposition
// (internal/decomp) on one milp.NewPaperFleet hour. The exact solve runs
// under the same node budget plus a wall-clock deadline, so at fleet scale it
// reports a limit status with whatever incumbent it found, while the
// decomposition answers with a proven primal–dual gap.
type fleetResult struct {
	Sites    int `json:"sites"`
	Binaries int `json:"binaries"`

	ExactWallMS    float64 `json:"exactWallMS"`
	ExactStatus    string  `json:"exactStatus"`
	ExactNodes     int     `json:"exactNodes"`
	ExactObjective float64 `json:"exactObjective"`

	DecompWallMS     float64 `json:"decompWallMS"`
	DecompStatus     string  `json:"decompStatus"`
	DecompIterations int     `json:"decompIterations"`
	DecompObjective  float64 `json:"decompObjective"`
	DecompDualBound  float64 `json:"decompDualBound"`
	// DecompGapPct is the decomposition's own proven relative gap between its
	// dual bound and recovered primal, in percent.
	DecompGapPct float64 `json:"decompGapPct"`
	// VsExactPct is decomp primal / exact incumbent − 1, in percent; only
	// meaningful as an optimality comparison when ExactStatus is "optimal".
	VsExactPct float64 `json:"vsExactPct"`
}

type report struct {
	Bench       string              `json:"bench"`
	GoMaxProcs  int                 `json:"goMaxProcs"`
	MaxNodes    int                 `json:"maxNodes"`
	Reps        int                 `json:"reps"`
	Instances   []instanceResult    `json:"instances"`
	LPCores     []coreCompare       `json:"lpCores"`
	Incremental []incrementalResult `json:"incremental"`
	Fleet       []fleetResult       `json:"fleet,omitempty"`
}

// runFleet measures one fleet size, best-of-reps per solver.
func runFleet(sites, maxNodes, reps int, exactDeadline time.Duration) fleetResult {
	fi := milp.NewPaperFleet(sites, 0)
	fr := fleetResult{Sites: sites, Binaries: 5 * sites}
	for r := 0; r < reps; r++ {
		start := time.Now()
		s := fi.Build().SolveWithOptions(milp.Options{MaxNodes: maxNodes, Deadline: exactDeadline})
		wall := time.Since(start).Seconds() * 1e3
		if fr.ExactWallMS == 0 || wall < fr.ExactWallMS {
			fr.ExactWallMS = wall
			fr.ExactStatus = s.Status.String()
			fr.ExactNodes = s.Nodes
			fr.ExactObjective = s.Objective
		}
	}
	for r := 0; r < reps; r++ {
		start := time.Now()
		res, err := decomp.Solve(decomp.FromFleet(fi), decomp.Options{})
		wall := time.Since(start).Seconds() * 1e3
		if err != nil {
			log.Fatalf("fleet sites=%d decomp: %v", sites, err)
		}
		if res.Status == decomp.Infeasible {
			log.Fatalf("fleet sites=%d decomp: infeasible", sites)
		}
		if fr.DecompWallMS == 0 || wall < fr.DecompWallMS {
			fr.DecompWallMS = wall
			fr.DecompStatus = res.Status.String()
			fr.DecompIterations = res.Iterations
			fr.DecompObjective = res.Objective
			fr.DecompDualBound = res.DualBound
			fr.DecompGapPct = 100 * res.Gap
		}
	}
	if fr.ExactObjective != 0 {
		fr.VsExactPct = 100 * (fr.DecompObjective/fr.ExactObjective - 1)
	}
	return fr
}

// runCore solves the instance best-of-reps on one LP core, sequentially.
func runCore(sites, maxNodes, reps int, core lp.Core) coreResult {
	k := milp.NewHardKnapsack(5*sites, 0)
	best := coreResult{Core: core.String()}
	for r := 0; r < reps; r++ {
		start := time.Now()
		s := k.SolveWithOptions(milp.Options{Workers: 1, MaxNodes: maxNodes, LPCore: core})
		wall := time.Since(start)
		if s.Status != milp.Optimal && s.Status != milp.Limit {
			log.Fatalf("lpcore %v sites=%d: unexpected status %v", core, sites, s.Status)
		}
		if best.WallMS == 0 || wall.Seconds()*1e3 < best.WallMS {
			best.WallMS = wall.Seconds() * 1e3
			best.Nodes = s.Nodes
			best.NodesPerSec = float64(s.Nodes) / wall.Seconds()
			best.LPIterations = s.Pivots
			best.Refactorizations = s.LPRefactorizations
			best.BasisUpdates = s.LPBasisUpdates
			best.Status = s.Status.String()
			best.Objective = s.Objective
		}
	}
	return best
}

// runIncremental re-solves an hour sequence of the milp.NewPaperHour family
// twice: cold every hour, and incrementally with presolve plus the previous
// hour's optimum and root basis. The budget loosens hour over hour (the
// carry-forward pool of the paper's §III grows through cheap hours), so each
// hour's optimum is feasible — and a strong incumbent — for the next.
func runIncremental(sites, hours, maxNodes int) incrementalResult {
	res := incrementalResult{Sites: sites, Binaries: 5 * sites, Hours: hours}
	var prev milp.Solution
	for h := 0; h < hours; h++ {
		cold := milp.NewPaperHour(sites, milp.PaperHourBudget(sites, h))
		start := time.Now()
		cs := cold.SolveWithOptions(milp.Options{MaxNodes: maxNodes})
		res.ColdWallMS += time.Since(start).Seconds() * 1e3
		if cs.Status != milp.Optimal && cs.Status != milp.Limit {
			log.Fatalf("incremental sites=%d hour=%d cold: %v", sites, h, cs.Status)
		}
		res.ColdNodes += cs.Nodes

		warm := milp.NewPaperHour(sites, milp.PaperHourBudget(sites, h))
		opt := milp.Options{MaxNodes: maxNodes, Presolve: true}
		if h > 0 {
			opt.StartX = prev.X
			opt.StartBasis = prev.RootBasis
		}
		start = time.Now()
		ws := warm.SolveWithOptions(opt)
		res.WarmWallMS += time.Since(start).Seconds() * 1e3
		if ws.Status != milp.Optimal && ws.Status != milp.Limit {
			log.Fatalf("incremental sites=%d hour=%d warm: %v", sites, h, ws.Status)
		}
		res.WarmNodes += ws.Nodes
		res.PresolveFixed += ws.PresolveFixed
		if ws.WarmStarted {
			res.WarmStarts++
		}
		prev = ws
	}
	if res.ColdNodes > 0 {
		res.NodeReduction = 1 - float64(res.WarmNodes)/float64(res.ColdNodes)
	}
	return res
}

func main() {
	out := flag.String("out", "BENCH_milp.json", "path to write the JSON report")
	quick := flag.Bool("quick", false, "CI smoke mode: smaller node budget, one repetition")
	gate := flag.Bool("gate", false,
		"exit nonzero if the sparse core is slower (nodes/sec) than the dense oracle on the largest instance, or if the fleet decomposition gap at N=50 exceeds 1%")
	fleet := flag.Bool("fleet", false,
		"also run the fleet section: exact MILP vs Lagrangian dual decomposition on milp.NewPaperFleet at N=50/200/500")
	flag.Parse()

	maxNodes, reps := 4000, 3
	if *quick {
		maxNodes, reps = 1000, 1
	}

	rep := report{
		Bench:      "milp branch-and-bound worker pool, hard knapsack at 5·N binaries",
		GoMaxProcs: runtime.GOMAXPROCS(0),
		MaxNodes:   maxNodes,
		Reps:       reps,
	}
	for _, sites := range []int{5, 10, 20} {
		k := milp.NewHardKnapsack(5*sites, 0)
		inst := instanceResult{Sites: sites, Binaries: 5 * sites}
		var base float64
		for _, workers := range []int{1, 2, 4, 8} {
			best := workerResult{Workers: workers}
			for r := 0; r < reps; r++ {
				start := time.Now()
				s := k.SolveWithOptions(milp.Options{Workers: workers, MaxNodes: maxNodes})
				wall := time.Since(start)
				if s.Status != milp.Optimal && s.Status != milp.Limit {
					log.Fatalf("sites=%d workers=%d: unexpected status %v", sites, workers, s.Status)
				}
				if best.WallMS == 0 || wall.Seconds()*1e3 < best.WallMS {
					best.WallMS = wall.Seconds() * 1e3
					best.Nodes = s.Nodes
					best.NodesPerSec = float64(s.Nodes) / wall.Seconds()
					best.Status = s.Status.String()
					best.Objective = s.Objective
				}
			}
			if workers == 1 {
				base = best.WallMS
			}
			best.Speedup = base / best.WallMS
			inst.Results = append(inst.Results, best)
			fmt.Printf("sites=%-3d workers=%d  wall=%8.1fms  nodes=%d  %8.0f nodes/s  speedup=%.2f\n",
				sites, workers, best.WallMS, best.Nodes, best.NodesPerSec, best.Speedup)
		}
		rep.Instances = append(rep.Instances, inst)
	}

	gateOK := true
	for _, sites := range []int{5, 10, 20} {
		cc := coreCompare{Sites: sites, Binaries: 5 * sites}
		cc.Dense = runCore(sites, maxNodes, reps, lp.CoreDense)
		cc.Sparse = runCore(sites, maxNodes, reps, lp.CoreSparse)
		cc.SparseSpeedup = cc.Dense.WallMS / cc.Sparse.WallMS
		rep.LPCores = append(rep.LPCores, cc)
		fmt.Printf("lpcore sites=%-3d dense=%8.1fms (%8.0f nodes/s)  sparse=%8.1fms (%8.0f nodes/s)  speedup=%.2f\n",
			sites, cc.Dense.WallMS, cc.Dense.NodesPerSec, cc.Sparse.WallMS, cc.Sparse.NodesPerSec, cc.SparseSpeedup)
		if sites == 20 && cc.Sparse.NodesPerSec < cc.Dense.NodesPerSec {
			gateOK = false
		}
	}

	hours := 12
	if *quick {
		hours = 6
	}
	for _, sites := range []int{5, 10, 20} {
		inc := runIncremental(sites, hours, maxNodes)
		rep.Incremental = append(rep.Incremental, inc)
		fmt.Printf("incremental sites=%-3d hours=%d  cold=%d nodes  warm=%d nodes  fixed=%d  warmStarts=%d  reduction=%.0f%%\n",
			sites, inc.Hours, inc.ColdNodes, inc.WarmNodes, inc.PresolveFixed, inc.WarmStarts, 100*inc.NodeReduction)
	}

	fleetGateOK := true
	if *fleet {
		exactDeadline := 10 * time.Second
		if *quick {
			exactDeadline = 3 * time.Second
		}
		for _, sites := range []int{50, 200, 500} {
			fr := runFleet(sites, maxNodes, reps, exactDeadline)
			rep.Fleet = append(rep.Fleet, fr)
			fmt.Printf("fleet sites=%-4d exact=%9.1fms (%s, %d nodes)  decomp=%8.1fms (%s, %d iters)  gap=%.3f%%  vsExact=%+.3f%%\n",
				sites, fr.ExactWallMS, fr.ExactStatus, fr.ExactNodes,
				fr.DecompWallMS, fr.DecompStatus, fr.DecompIterations, fr.DecompGapPct, fr.VsExactPct)
			if sites == 50 && fr.DecompGapPct > 1 {
				fleetGateOK = false
			}
		}
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s (GOMAXPROCS=%d)\n", *out, rep.GoMaxProcs)
	if *gate && !gateOK {
		log.Fatal("gate: sparse core slower than the dense oracle at N=20")
	}
	if *gate && !fleetGateOK {
		log.Fatal("gate: fleet decomposition gap above 1% at N=50")
	}
}

// Command routebench measures the request data plane: one capper decision is
// compiled into a dispatch.Snapshot — exactly as the API's /v1/route path
// does — and hammered from many goroutines, reporting routes/sec for the
// per-request path (one atomic fetch-add + array read per route) and the
// closed-form batch path.
//
// Usage:
//
//	routebench -out BENCH_milp.json            # 2 s measurement, all cores
//	routebench -gate -duration 1s              # CI smoke: fail below 1M routes/s
//
// The report is merged into the benchmilp JSON under a "routes" key, so one
// artifact carries both the solver and data-plane numbers.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"billcap/internal/core"
	"billcap/internal/dcmodel"
	"billcap/internal/dispatch"
	"billcap/internal/pricing"
)

type pathResult struct {
	Routes       int64   `json:"routes"`
	WallMS       float64 `json:"wallMS"`
	RoutesPerSec float64 `json:"routesPerSec"`
}

type report struct {
	Bench        string     `json:"bench"`
	GoMaxProcs   int        `json:"goMaxProcs"`
	Sites        int        `json:"sites"`
	Goroutines   int        `json:"goroutines"`
	BatchSize    int        `json:"batchSize"`
	PatternLen   int        `json:"patternLen"`
	SolvedHour   bool       `json:"solvedHour"`
	PerRequest   pathResult `json:"perRequest"`
	Batch        pathResult `json:"batch"`
	MinGateRate  float64    `json:"minGateRoutesPerSec"`
	Conservation bool       `json:"conservation"` // counters summed to routes issued
}

// decisionSnapshot solves one uncapped paper hour at ~60% of capacity and
// compiles the decision, proving the full decision→snapshot path. For fleet
// sizes beyond the paper's three sites the loads are synthesized instead
// (the data plane does not care where the weights came from).
func decisionSnapshot(sites int) (*dispatch.Snapshot, bool) {
	if sites == 3 {
		sys, err := core.NewSystem(dcmodel.PaperSites(), pricing.PaperPolicies(pricing.Policy1), core.Options{})
		if err != nil {
			log.Fatal(err)
		}
		total := 0.6 * sys.MaxThroughput()
		in := core.HourInput{
			TotalLambda:   total,
			PremiumLambda: 0.8 * total,
			DemandMW:      []float64{170, 190, 150},
			BudgetUSD:     math.Inf(1),
		}
		dec, err := sys.DecideHour(in)
		if err != nil {
			log.Fatal(err)
		}
		snap, err := dispatch.NewSnapshot(dec.Lambdas(), dec.ServedOrdinary, total-in.PremiumLambda, 0, 1)
		if err != nil {
			log.Fatal(err)
		}
		return snap, true
	}
	lambdas := make([]float64, sites)
	for i := range lambdas {
		lambdas[i] = float64(1 + (i*7919)%97)
	}
	snap, err := dispatch.NewSnapshot(lambdas, 80, 100, 0, 1)
	if err != nil {
		log.Fatal(err)
	}
	return snap, false
}

// drive runs fn from g goroutines until the duration elapses, returning the
// total units completed and the wall time.
func drive(g int, d time.Duration, fn func() int64) (int64, time.Duration) {
	var stop atomic.Bool
	var total atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < g; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var n int64
			for !stop.Load() {
				n += fn()
			}
			total.Add(n)
		}()
	}
	time.Sleep(d)
	stop.Store(true)
	wg.Wait()
	return total.Load(), time.Since(start)
}

func main() {
	sites := flag.Int("sites", 3, "fleet size (3 solves a real paper hour; larger synthesizes loads)")
	goroutines := flag.Int("goroutines", runtime.GOMAXPROCS(0), "concurrent routing goroutines")
	duration := flag.Duration("duration", 2*time.Second, "measurement window per path")
	batch := flag.Int("batch", 128, "requests per RouteBatch call in the batch path")
	out := flag.String("out", "BENCH_milp.json", "benchmark JSON to merge the \"routes\" section into")
	gate := flag.Bool("gate", false, "exit nonzero below -min-routes-per-sec on the per-request path")
	minRate := flag.Float64("min-routes-per-sec", 1e6, "gate threshold for the per-request path")
	flag.Parse()

	if *sites < 1 || *goroutines < 1 || *batch < 1 || *duration <= 0 {
		log.Fatalf("bad flags: sites=%d goroutines=%d batch=%d duration=%v", *sites, *goroutines, *batch, *duration)
	}

	snap, solved := decisionSnapshot(*sites)
	rep := report{
		Bench:       "lock-free routing snapshot (Webster wheel), routes/sec",
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		Sites:       *sites,
		Goroutines:  *goroutines,
		BatchSize:   *batch,
		PatternLen:  snap.PatternLen(),
		SolvedHour:  solved,
		MinGateRate: *minRate,
	}

	routes, wall := drive(*goroutines, *duration, func() int64 {
		snap.Route()
		return 1
	})
	rep.PerRequest = pathResult{
		Routes: routes, WallMS: wall.Seconds() * 1e3,
		RoutesPerSec: float64(routes) / wall.Seconds(),
	}
	fmt.Printf("per-request: %d routes in %v from %d goroutines = %.0f routes/s\n",
		routes, wall.Round(time.Millisecond), *goroutines, rep.PerRequest.RoutesPerSec)

	bsnap, _ := decisionSnapshot(*sites)
	n := int64(*batch)
	broutes, bwall := drive(*goroutines, *duration, func() int64 {
		bsnap.RouteBatch(*batch)
		return n
	})
	rep.Batch = pathResult{
		Routes: broutes, WallMS: bwall.Seconds() * 1e3,
		RoutesPerSec: float64(broutes) / bwall.Seconds(),
	}
	fmt.Printf("batch(%d):   %d routes in %v from %d goroutines = %.0f routes/s\n",
		*batch, broutes, bwall.Round(time.Millisecond), *goroutines, rep.Batch.RoutesPerSec)

	// Conservation audit: after quiescence the striped counters must sum to
	// exactly the routes issued on each snapshot.
	rep.Conservation = sumCounts(snap) == routes && sumCounts(bsnap) == broutes
	if !rep.Conservation {
		log.Fatalf("conservation failed: per-request %d/%d, batch %d/%d",
			sumCounts(snap), routes, sumCounts(bsnap), broutes)
	}

	merge(*out, rep)
	fmt.Printf("merged \"routes\" into %s\n", *out)
	if *gate && rep.PerRequest.RoutesPerSec < *minRate {
		log.Fatalf("gate: %.0f routes/s below the %.0f floor", rep.PerRequest.RoutesPerSec, *minRate)
	}
}

func sumCounts(s *dispatch.Snapshot) int64 {
	var t int64
	for _, c := range s.SiteCounts() {
		t += c
	}
	return t
}

// merge folds the routes report into the (possibly benchmilp-written) JSON
// file without clobbering the solver sections.
func merge(path string, rep report) {
	doc := map[string]any{}
	if buf, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(buf, &doc); err != nil {
			log.Printf("routebench: %s is not JSON (%v); rewriting", path, err)
			doc = map[string]any{}
		}
	}
	doc["routes"] = rep
	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		log.Fatal(err)
	}
}

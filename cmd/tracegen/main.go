// Command tracegen generates the synthetic input traces of the evaluation
// as CSV ("hour,value"): the Wikipedia-like request workload and the
// RECO-like regional background power demand.
//
// Usage:
//
//	tracegen -kind workload -hours 1344 -seed 20071001 > workload.csv
//	tracegen -kind demand -region B -hours 672 > demand_b.csv
package main

import (
	"flag"
	"fmt"
	"os"

	"billcap/internal/grid"
	"billcap/internal/workload"
)

func main() {
	kind := flag.String("kind", "workload", "what to generate: workload | demand")
	hours := flag.Int("hours", 1344, "number of hourly samples")
	seed := flag.Int64("seed", 20071001, "generator seed")
	region := flag.String("region", "B", "demand region: B | C | D")
	base := flag.Float64("base", 0, "override the base level (req/h or MW); 0 = default")
	flag.Parse()

	if err := run(*kind, *hours, *seed, *region, *base); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

func run(kind string, hours int, seed int64, region string, base float64) error {
	switch kind {
	case "workload":
		cfg := workload.DefaultWikipedia()
		cfg.Hours = hours
		cfg.Seed = seed
		if base > 0 {
			cfg.BaseRate = base
		}
		tr, err := workload.Synthetic(cfg)
		if err != nil {
			return err
		}
		return tr.Rates.WriteCSV(os.Stdout)
	case "demand":
		regions, err := grid.PaperRegions(hours, seed)
		if err != nil {
			return err
		}
		for _, d := range regions {
			if d.Region == region {
				return d.MW.WriteCSV(os.Stdout)
			}
		}
		return fmt.Errorf("unknown region %q (want B, C or D)", region)
	default:
		return fmt.Errorf("unknown kind %q (want workload or demand)", kind)
	}
}

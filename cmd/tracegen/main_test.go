package main

import "testing"

func TestRunWorkload(t *testing.T) {
	if err := run("workload", 24, 1, "B", 0); err != nil {
		t.Fatal(err)
	}
	if err := run("workload", 24, 1, "B", 5e11); err != nil {
		t.Fatal(err)
	}
}

func TestRunDemand(t *testing.T) {
	for _, region := range []string{"B", "C", "D"} {
		if err := run("demand", 24, 1, region, 0); err != nil {
			t.Fatalf("region %s: %v", region, err)
		}
	}
	if err := run("demand", 24, 1, "Z", 0); err == nil {
		t.Error("unknown region accepted")
	}
}

func TestRunUnknownKind(t *testing.T) {
	if err := run("nonsense", 24, 1, "B", 0); err == nil {
		t.Error("unknown kind accepted")
	}
	if err := run("workload", 0, 1, "B", 0); err == nil {
		t.Error("zero hours accepted")
	}
}

module billcap

go 1.22

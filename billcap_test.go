package billcap_test

import (
	"math"
	"testing"

	"billcap"
)

func TestQuickstartDecision(t *testing.T) {
	sys, err := billcap.NewSystem(billcap.PaperSites(), billcap.PaperPolicies(billcap.Policy1), billcap.SystemOptions{})
	if err != nil {
		t.Fatal(err)
	}
	dec, err := sys.DecideHour(billcap.HourInput{
		TotalLambda:   1.5e12,
		PremiumLambda: 1.2e12,
		DemandMW:      []float64{170, 190, 150},
		BudgetUSD:     math.Inf(1),
	})
	if err != nil {
		t.Fatal(err)
	}
	if dec.Step != billcap.StepCostMin {
		t.Errorf("step = %v", dec.Step)
	}
	if dec.Served <= 0 || dec.PredictedCostUSD <= 0 {
		t.Errorf("served %v cost %v", dec.Served, dec.PredictedCostUSD)
	}
	real, err := sys.Realize(dec.Lambdas(), []float64{170, 190, 150})
	if err != nil {
		t.Fatal(err)
	}
	if real.BillUSD() <= 0 {
		t.Errorf("realized bill %v", real.BillUSD())
	}
}

func TestScenarioRoundTrip(t *testing.T) {
	scen, err := billcap.PaperScenario(billcap.Policy1, billcap.TightBudget())
	if err != nil {
		t.Fatal(err)
	}
	// Shrink for test speed: one week, pro-rata budget.
	scen.Month = scen.Month.Slice(0, 168)
	scen.MonthlyBudgetUSD = billcap.TightBudget() / 4
	cc, err := billcap.NewCostCapping(scen.DCs, scen.Policies)
	if err != nil {
		t.Fatal(err)
	}
	res, err := billcap.Run(scen, cc)
	if err != nil {
		t.Fatal(err)
	}
	if res.PremiumServiceRate() < 1-1e-9 {
		t.Errorf("premium rate %v", res.PremiumServiceRate())
	}
	mo, err := billcap.NewMinOnly(scen.DCs, scen.Policies, billcap.MinOnlyAvg)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := billcap.Run(scen, mo)
	if err != nil {
		t.Fatal(err)
	}
	if rb.OrdinaryServiceRate() < 1-1e-4 {
		t.Errorf("Min-Only ordinary rate %v, want ≈1", rb.OrdinaryServiceRate())
	}
}

func TestBudgetAccessors(t *testing.T) {
	if !math.IsInf(billcap.Uncapped(), 1) {
		t.Error("Uncapped not +Inf")
	}
	pts := billcap.PaperBudgets()
	if len(pts) != 5 {
		t.Fatalf("budget points = %d", len(pts))
	}
	if billcap.TightBudget() >= billcap.AbundantBudget() {
		t.Error("tight budget not below abundant")
	}
	for i := 1; i < len(pts); i++ {
		if pts[i] <= pts[i-1] {
			t.Errorf("budget sweep not increasing at %d", i)
		}
	}
}

func TestSyntheticTraceConfig(t *testing.T) {
	cfg := billcap.DefaultTraceConfig()
	cfg.Hours = 48
	tr, err := billcap.SyntheticTrace(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 48 {
		t.Errorf("trace len %d", tr.Len())
	}
}

func TestExtensionFacades(t *testing.T) {
	sites := billcap.PaperHeteroSites()
	if len(sites) != 3 {
		t.Fatalf("hetero sites = %d", len(sites))
	}
	hn, err := billcap.NewHeteroNetwork(sites, billcap.PaperPolicies(billcap.Policy1))
	if err != nil {
		t.Fatal(err)
	}
	if hn.MaxThroughput() <= 0 {
		t.Error("hetero capacity not positive")
	}

	dcs := billcap.SyntheticSites(6)
	pols := billcap.SyntheticPolicies(6)
	coord, err := billcap.NewCoordinator(dcs, pols, []int{3, 3})
	if err != nil {
		t.Fatal(err)
	}
	if coord.Capacity() <= 0 || len(coord.Groups) != 2 {
		t.Errorf("coordinator capacity %v groups %d", coord.Capacity(), len(coord.Groups))
	}

	tou, err := billcap.NewTimeOfUse(billcap.PaperSites(), billcap.PaperPolicies(billcap.Policy1))
	if err != nil {
		t.Fatal(err)
	}
	if tou.Name() != "TOU (two-price)" {
		t.Errorf("TOU name %q", tou.Name())
	}
}

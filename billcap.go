// Package billcap is the public API of a reproduction of "Electricity Bill
// Capping for Cloud-Scale Data Centers that Impact the Power Markets"
// (Zhang, Wang & Wang, ICPP 2012).
//
// It manages a network of geographically distributed data centers whose
// power draw is large enough to move locational electricity prices (LMP).
// Every hour a bill capper routes the incoming requests across sites so
// that the electricity bill is minimized and, when a monthly budget is set,
// capped: premium customers keep their QoS unconditionally while ordinary
// traffic is admitted as the budget allows.
//
// Quick start — one capping decision:
//
//	sys, _ := billcap.NewSystem(billcap.PaperSites(), billcap.PaperPolicies(billcap.Policy1), billcap.SystemOptions{})
//	dec, _ := sys.DecideHour(billcap.HourInput{
//	    TotalLambda:   1.5e12,          // requests/hour arriving
//	    PremiumLambda: 1.2e12,          // from paying customers
//	    DemandMW:      []float64{170, 190, 150},
//	    BudgetUSD:     900,             // this hour's budget
//	})
//
// Month-long simulations, the paper's evaluation scenario, strategies and
// baselines are exposed through Scenario / Run / NewCostCapping /
// NewMinOnly. Everything is deterministic and uses only the standard
// library.
package billcap

import (
	"billcap/internal/baseline"
	"billcap/internal/core"
	"billcap/internal/dcmodel"
	"billcap/internal/grid"
	"billcap/internal/hetero"
	"billcap/internal/hierarchy"
	"billcap/internal/pricing"
	"billcap/internal/sim"
	"billcap/internal/workload"
)

// Core single-hour API.
type (
	// System is a network of data centers under one bill-capping controller.
	System = core.System
	// SystemOptions configure the optimizer (power-model scope, price view).
	SystemOptions = core.Options
	// HourInput is one invocation period's inputs.
	HourInput = core.HourInput
	// Decision is the capper's hourly allocation.
	Decision = core.Decision
	// SiteAlloc is the plan for a single site.
	SiteAlloc = core.SiteAlloc
	// Realization is the billed ground truth of an allocation.
	Realization = core.Realization
	// SolverStats aggregates MILP effort.
	SolverStats = core.SolverStats
	// Step identifies which branch of the algorithm decided the hour.
	Step = core.Step
)

// Decision steps.
const (
	StepCostMin      = core.StepCostMin
	StepBudgetCapped = core.StepBudgetCapped
	StepPremiumOnly  = core.StepPremiumOnly
	StepOverCapacity = core.StepOverCapacity
)

// Data center and market modeling.
type (
	// Site is one data center's physical configuration.
	Site = dcmodel.Site
	// Policy is a locational step-pricing policy.
	Policy = pricing.Policy
	// PolicyVariant selects the paper's pricing-policy families.
	PolicyVariant = pricing.PolicyVariant
)

// Pricing policy variants (paper Fig. 4).
const (
	Policy0 = pricing.Policy0
	Policy1 = pricing.Policy1
	Policy2 = pricing.Policy2
	Policy3 = pricing.Policy3
)

// Simulation API.
type (
	// Scenario configures a month-long simulation.
	Scenario = sim.Config
	// Result is a month's ledger.
	Result = sim.Result
	// HourRecord is one simulated hour.
	HourRecord = sim.HourRecord
	// Decider is a dispatching strategy.
	Decider = sim.Decider
	// Trace is an hourly arrival series.
	Trace = workload.Trace
	// FlashCrowd is a breaking-news load spike injectable into a Trace.
	FlashCrowd = workload.FlashCrowd
	// Demand is a region's hourly background power draw.
	Demand = grid.Demand
	// MinOnlyVariant selects a Min-Only baseline flavour.
	MinOnlyVariant = baseline.Variant
)

// Min-Only baseline variants (paper §VII-A).
const (
	MinOnlyAvg = baseline.Avg
	MinOnlyLow = baseline.Low
)

// NewSystem assembles a bill-capping controller over data centers and their
// locational pricing policies.
func NewSystem(dcs []*Site, policies []Policy, opts SystemOptions) (*System, error) {
	return core.NewSystem(dcs, policies, opts)
}

// PaperSites returns the three data centers of the paper's evaluation
// (§VI-A parameters).
func PaperSites() []*Site { return dcmodel.PaperSites() }

// PaperPolicies returns the PJM-five-bus-derived locational policies.
func PaperPolicies(v PolicyVariant) []Policy { return pricing.PaperPolicies(v) }

// SyntheticSites returns n data centers cycling the paper configurations,
// for scalability studies (the paper's §IV-C uses 13).
func SyntheticSites(n int) []*Site { return dcmodel.SyntheticSites(n) }

// SyntheticPolicies returns n five-level locational policies to match
// SyntheticSites.
func SyntheticPolicies(n int) []Policy { return pricing.Synthetic(n) }

// PaperScenario assembles the paper's full evaluation scenario: three sites,
// a two-month synthetic Wikipedia-like trace, RECO-like background demand
// and the 80/20 premium split. Use Uncapped() to disable the budget.
func PaperScenario(v PolicyVariant, monthlyBudgetUSD float64) (Scenario, error) {
	return sim.PaperScenario(v, monthlyBudgetUSD)
}

// Uncapped returns the budget value that disables capping.
func Uncapped() float64 { return sim.Uncapped() }

// TightBudget returns the scenario's insufficient budget (paper $1.5M role).
func TightBudget() float64 { return sim.TightBudget() }

// AbundantBudget returns the scenario's sufficient budget (paper $2.5M role).
func AbundantBudget() float64 { return sim.AbundantBudget() }

// PaperBudgets returns the five-point budget sweep (paper Fig. 10 roles).
func PaperBudgets() []float64 { return sim.PaperBudgets() }

// NewCostCapping builds the paper's two-step strategy.
func NewCostCapping(dcs []*Site, policies []Policy) (Decider, error) {
	return sim.NewCostCapping(dcs, policies)
}

// NewMinOnly builds a Min-Only baseline (price taker, server-only power).
func NewMinOnly(dcs []*Site, policies []Policy, v MinOnlyVariant) (Decider, error) {
	return baseline.New(dcs, policies, v)
}

// Run replays the scenario's month under the strategy and returns the
// ledger.
func Run(s Scenario, d Decider) (Result, error) { return sim.Run(s, d) }

// Heterogeneous-fleet extension (paper §IX future work).
type (
	// HeteroSite is a data center mixing several server classes.
	HeteroSite = hetero.Site
	// ServerClass is one homogeneous pool inside a HeteroSite.
	ServerClass = hetero.ServerClass
	// HeteroNetwork optimizes per-class dispatch across HeteroSites.
	HeteroNetwork = hetero.Network
)

// PaperHeteroSites returns the paper's three locations refitted as
// partially upgraded, heterogeneous fleets.
func PaperHeteroSites() []*HeteroSite { return hetero.PaperHeteroSites() }

// NewHeteroNetwork assembles the heterogeneous optimizer.
func NewHeteroNetwork(sites []*HeteroSite, policies []Policy) (*HeteroNetwork, error) {
	return hetero.NewNetwork(sites, policies)
}

// Hierarchical-capping extension (paper §IX future work).
type (
	// Coordinator is the two-level bill capper: a load/budget splitter over
	// per-group cappers.
	Coordinator = hierarchy.Coordinator
	// HierarchicalDecision is one hour's two-level outcome.
	HierarchicalDecision = hierarchy.Decision
)

// NewCoordinator partitions the sites into groups of the given sizes and
// builds the two-level capper.
func NewCoordinator(dcs []*Site, policies []Policy, groupSizes []int) (*Coordinator, error) {
	return hierarchy.New(dcs, policies, groupSizes)
}

// NewTimeOfUse builds the Le-style two-price baseline (paper §VIII refs
// [32]-[34]): time-aware on/off-peak tariffs, load-blind.
func NewTimeOfUse(dcs []*Site, policies []Policy) (Decider, error) {
	return baseline.NewTimeOfUse(dcs, policies)
}

// SyntheticTrace generates a deterministic Wikipedia-like workload trace.
func SyntheticTrace(cfg workload.GenConfig) (Trace, error) { return workload.Synthetic(cfg) }

// DefaultTraceConfig is the generator configuration behind PaperScenario.
func DefaultTraceConfig() workload.GenConfig { return workload.DefaultWikipedia() }
